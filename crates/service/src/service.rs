//! The multi-tenant registry: named datasets, each with its own writer.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

use anno_mine::{CountingStrategy, IncrementalConfig, Thresholds};
use anno_wal::{GroupCommitter, SyncPolicy, WalOptions};

use crate::dataset::{Dataset, DurabilityOptions};
use crate::error::ServiceError;

/// Per-dataset mining configuration, with serving-friendly defaults.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Minimum support / confidence (α, β). Default: the paper's 0.4/0.8.
    pub thresholds: Thresholds,
    /// Retention factor for the near-threshold candidate store.
    pub retention: f64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            thresholds: Thresholds::paper(),
            retention: 0.5,
        }
    }
}

impl From<ServiceConfig> for IncrementalConfig {
    fn from(cfg: ServiceConfig) -> IncrementalConfig {
        IncrementalConfig {
            thresholds: cfg.thresholds,
            retention: cfg.retention,
            counting: CountingStrategy::HashTree,
        }
    }
}

/// One row of the `datasets` listing.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSummary {
    /// Dataset name.
    pub name: String,
    /// Live tuples (from the snapshot if mined, else the write state).
    pub tuples: usize,
    /// Valid rules in the latest snapshot (0 pre-mine).
    pub rules: usize,
    /// Latest published snapshot epoch (0 pre-mine).
    pub epoch: u64,
    /// Whether a snapshot has been published.
    pub mined: bool,
}

/// The concurrent, multi-tenant correlation-serving engine.
///
/// Thread-safe: share it behind an `Arc` between protocol handlers,
/// background writers, and embedding applications.
#[derive(Debug, Default)]
pub struct Service {
    datasets: RwLock<BTreeMap<String, Arc<Dataset>>>,
    /// Names with a durable open in flight. Recovery (checkpoint restore
    /// plus log replay) can take seconds; reserving the name here lets
    /// [`Service::open_durable`] run it *without* holding the registry
    /// lock, so reads against other datasets never stall behind it.
    /// Lock order: `opening` before `datasets`, never the reverse.
    opening: Mutex<BTreeSet<String>>,
    /// One group committer shared by every durable tenant this registry
    /// opens (created on first use): K datasets committing concurrently
    /// amortize their fsyncs into shared sync windows instead of paying
    /// one fsync per drain each.
    committer: OnceLock<Arc<GroupCommitter>>,
}

impl Service {
    /// An empty registry.
    pub fn new() -> Service {
        Service::default()
    }

    /// Register a new dataset and start its writer thread.
    pub fn create(&self, name: &str, config: ServiceConfig) -> Result<Arc<Dataset>, ServiceError> {
        let opening = self.opening.lock().expect("opening lock");
        if opening.contains(name) {
            return Err(ServiceError::DatasetExists(name.to_string()));
        }
        let mut map = self.datasets.write().expect("registry lock");
        if map.contains_key(name) {
            return Err(ServiceError::DatasetExists(name.to_string()));
        }
        let ds = Arc::new(Dataset::spawn(name, config.into())?);
        map.insert(name.to_string(), Arc::clone(&ds));
        Ok(ds)
    }

    /// The registry's shared group committer (created on first call).
    /// [`Service::open_durable`] threads it through every durable open;
    /// embedders wiring up [`Dataset::open_with`] themselves can clone it
    /// from here to join the same sync windows.
    pub fn group_committer(&self) -> Arc<GroupCommitter> {
        Arc::clone(
            self.committer
                .get_or_init(|| Arc::new(GroupCommitter::new())),
        )
    }

    /// Register a **durable** dataset rooted at `dir`, recovering any
    /// state already persisted there (checkpoint restore + write-ahead-log
    /// tail replay) before serving. `config` applies only if the
    /// directory holds no mined state — see [`Dataset::open`].
    ///
    /// The dataset's log syncs through the registry's shared
    /// [group committer](Service::group_committer): its drains are acked
    /// once their shared sync window closes, so concurrent durable
    /// tenants pay amortized fsyncs instead of one each per drain.
    /// Automatic checkpoints are off; use [`Service::open_durable_with`]
    /// to set a [`anno_wal::CheckpointPolicy`] or opt back into
    /// per-append sync.
    ///
    /// Recovery can take a while on a large directory, so it runs with
    /// only the *name* reserved — never the registry lock — and queries
    /// against other datasets proceed undisturbed. Two sessions racing to
    /// open the same name still cannot both replay the same directory
    /// (and two names over one directory are refused by the wal's own
    /// lock file).
    pub fn open_durable(
        &self,
        name: &str,
        config: ServiceConfig,
        dir: &std::path::Path,
    ) -> Result<Arc<Dataset>, ServiceError> {
        let options = DurabilityOptions {
            wal: WalOptions {
                sync: SyncPolicy::Grouped(self.group_committer()),
                ..WalOptions::default()
            },
            ..DurabilityOptions::default()
        };
        self.open_durable_with(name, config, dir, options)
    }

    /// [`Service::open_durable`] with explicit [`DurabilityOptions`]
    /// (sync policy, segment size, automatic checkpoint policy).
    pub fn open_durable_with(
        &self,
        name: &str,
        config: ServiceConfig,
        dir: &std::path::Path,
        options: DurabilityOptions,
    ) -> Result<Arc<Dataset>, ServiceError> {
        {
            let mut opening = self.opening.lock().expect("opening lock");
            if opening.contains(name)
                || self
                    .datasets
                    .read()
                    .expect("registry lock")
                    .contains_key(name)
            {
                return Err(ServiceError::DatasetExists(name.to_string()));
            }
            opening.insert(name.to_string());
        }
        let opened = Dataset::open_with(name, config.into(), dir, options);
        // Release the reservation and (on success) publish, atomically
        // with respect to other create/open calls on this name.
        let mut opening = self.opening.lock().expect("opening lock");
        opening.remove(name);
        let ds = Arc::new(opened?);
        self.datasets
            .write()
            .expect("registry lock")
            .insert(name.to_string(), Arc::clone(&ds));
        Ok(ds)
    }

    /// Look up a dataset by name.
    pub fn get(&self, name: &str) -> Result<Arc<Dataset>, ServiceError> {
        self.datasets
            .read()
            .expect("registry lock")
            .get(name)
            .cloned()
            .ok_or_else(|| ServiceError::UnknownDataset(name.to_string()))
    }

    /// Unregister a dataset, stopping its writer (queued work is drained).
    pub fn remove(&self, name: &str) -> Result<(), ServiceError> {
        let ds = self
            .datasets
            .write()
            .expect("registry lock")
            .remove(name)
            .ok_or_else(|| ServiceError::UnknownDataset(name.to_string()))?;
        ds.shutdown();
        Ok(())
    }

    /// Summaries of every registered dataset, in name order.
    pub fn list(&self) -> Vec<DatasetSummary> {
        let map = self.datasets.read().expect("registry lock");
        map.values()
            .map(|ds| match ds.try_snapshot() {
                Some(snap) => DatasetSummary {
                    name: ds.name().to_string(),
                    tuples: snap.db_size(),
                    rules: snap.rules().len(),
                    epoch: snap.epoch(),
                    mined: true,
                },
                None => DatasetSummary {
                    name: ds.name().to_string(),
                    tuples: ds.live_tuples(),
                    rules: 0,
                    epoch: 0,
                    mined: false,
                },
            })
            .collect()
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        // Stop every writer deterministically; Dataset::drop would do it
        // too, but only once the last outside Arc is gone.
        for ds in self.datasets.read().expect("registry lock").values() {
            ds.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::UpdateOp;

    #[test]
    fn registry_create_get_list_remove() {
        let service = Service::new();
        let ds = service.create("a", ServiceConfig::default()).unwrap();
        assert!(matches!(
            service.create("a", ServiceConfig::default()),
            Err(ServiceError::DatasetExists(_))
        ));
        service.create("b", ServiceConfig::default()).unwrap();

        ds.enqueue(UpdateOp::InsertRows(vec!["1 2 X".into()]))
            .unwrap();
        ds.flush().unwrap();

        let listing = service.list();
        assert_eq!(listing.len(), 2);
        assert_eq!(listing[0].name, "a");
        assert_eq!(listing[0].tuples, 1);
        assert!(!listing[0].mined);

        assert!(service.get("a").is_ok());
        service.remove("a").unwrap();
        assert!(matches!(
            service.get("a"),
            Err(ServiceError::UnknownDataset(_))
        ));
        assert!(matches!(
            service.remove("a"),
            Err(ServiceError::UnknownDataset(_))
        ));
    }

    #[test]
    fn tenants_are_isolated() {
        let service = Service::new();
        let a = service.create("a", ServiceConfig::default()).unwrap();
        let b = service.create("b", ServiceConfig::default()).unwrap();
        a.enqueue(UpdateOp::InsertRows(vec!["1 2 X".into(), "1 2 X".into()]))
            .unwrap();
        b.enqueue(UpdateOp::InsertRows(vec!["9 Z".into()])).unwrap();
        a.mine().unwrap();
        b.mine().unwrap();
        let sa = a.snapshot().unwrap();
        let sb = b.snapshot().unwrap();
        assert_eq!(sa.db_size(), 2);
        assert_eq!(sb.db_size(), 1);
        assert_eq!(sa.dataset(), "a");
        assert_eq!(sb.dataset(), "b");
    }
}
