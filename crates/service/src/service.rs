//! The multi-tenant registry: named datasets, each with its own writer —
//! plus the service-level observability spine: a background sampler that
//! snapshots every dataset's counters into a time-series ring (windowed
//! rates like drains/s fall out of it), a service event journal, and the
//! shared group committer's fsync latency histogram.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

use anno_metrics::{windowed_rate, Event, EventJournal, Histogram, HistogramSnapshot, Ring};
use anno_mine::{CountingStrategy, IncrementalConfig, Thresholds};
use anno_wal::{GroupCommitStats, GroupCommitter, SyncPolicy, WalObserver, WalOptions};

use crate::dataset::{Dataset, DurabilityOptions};
use crate::error::ServiceError;

/// How often the background sampler snapshots every dataset's counters.
const SAMPLE_INTERVAL: Duration = Duration::from_millis(100);

/// Ring capacity: at the sampling interval this retains roughly the last
/// minute of samples, which is also the window the rates are quoted over.
const RING_CAPACITY: usize = 600;

/// The window (milliseconds of ring history) rates are computed over.
const WINDOW_MS: u64 = 60_000;

/// Service maintenance events retained (group-commit windows, lifecycle).
const SERVICE_JOURNAL_CAPACITY: usize = 512;

/// Per-dataset mining configuration, with serving-friendly defaults.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Minimum support / confidence (α, β). Default: the paper's 0.4/0.8.
    pub thresholds: Thresholds,
    /// Retention factor for the near-threshold candidate store.
    pub retention: f64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            thresholds: Thresholds::paper(),
            retention: 0.5,
        }
    }
}

impl From<ServiceConfig> for IncrementalConfig {
    fn from(cfg: ServiceConfig) -> IncrementalConfig {
        IncrementalConfig {
            thresholds: cfg.thresholds,
            retention: cfg.retention,
            counting: CountingStrategy::HashTree,
        }
    }
}

/// One row of the `datasets` listing.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSummary {
    /// Dataset name.
    pub name: String,
    /// Live tuples (from the snapshot if mined, else the write state).
    pub tuples: usize,
    /// Valid rules in the latest snapshot (0 pre-mine).
    pub rules: usize,
    /// Latest published snapshot epoch (0 pre-mine).
    pub epoch: u64,
    /// Whether a snapshot has been published.
    pub mined: bool,
}

/// The concurrent, multi-tenant correlation-serving engine.
///
/// Thread-safe: share it behind an `Arc` between protocol handlers,
/// background writers, and embedding applications.
#[derive(Debug, Default)]
pub struct Service {
    /// `Arc`-shared with the background sampler thread, which walks the
    /// registry on its own schedule without borrowing from `Service`.
    datasets: Arc<RwLock<BTreeMap<String, Arc<Dataset>>>>,
    /// Names with a durable open in flight. Recovery (checkpoint restore
    /// plus log replay) can take seconds; reserving the name here lets
    /// [`Service::open_durable`] run it *without* holding the registry
    /// lock, so reads against other datasets never stall behind it.
    /// Lock order: `opening` before `datasets`, never the reverse.
    opening: Mutex<BTreeSet<String>>,
    /// One group committer shared by every durable tenant this registry
    /// opens (created on first use): K datasets committing concurrently
    /// amortize their fsyncs into shared sync windows instead of paying
    /// one fsync per drain each.
    committer: OnceLock<Arc<GroupCommitter>>,
    /// Service-level observability state, shared with the sampler thread
    /// and the committer's observer.
    obs: Arc<ServiceObs>,
    /// The background sampler, started lazily with the first dataset.
    sampler: OnceLock<SamplerHandle>,
}

/// Service-level observability state: the event journal, the shared
/// committer's fsync latency distribution, and the sample ring windowed
/// rates are computed from.
#[derive(Debug)]
struct ServiceObs {
    journal: EventJournal,
    fsync_latency: Histogram,
    /// Shared-committer fsyncs, counted separately from the histogram so
    /// sampling needs one relaxed load, not a 496-bucket snapshot.
    fsyncs: AtomicU64,
    ring: Ring<ServiceSample>,
}

impl Default for ServiceObs {
    fn default() -> Self {
        ServiceObs {
            journal: EventJournal::new(SERVICE_JOURNAL_CAPACITY),
            fsync_latency: Histogram::new(),
            fsyncs: AtomicU64::new(0),
            ring: Ring::new(RING_CAPACITY),
        }
    }
}

/// Feeds the shared group committer's reports into the service-level
/// histogram and journal.
struct ServiceWalObserver {
    obs: Arc<ServiceObs>,
}

impl WalObserver for ServiceWalObserver {
    fn fsync(&self, nanos: u64) {
        self.obs.fsync_latency.record(nanos);
        self.obs.fsyncs.fetch_add(1, Ordering::Relaxed);
    }

    fn window_closed(&self, submitted: u64, files_synced: u64, nanos: u64) {
        self.obs.journal.record(
            "group_commit_window",
            format!("submitted={submitted} files_synced={files_synced} nanos={nanos}"),
        );
    }
}

/// One ring entry: every dataset's rate-relevant counters at one instant.
#[derive(Debug, Clone)]
struct ServiceSample {
    total_drains: u64,
    total_ds_fsyncs: u64,
    committer_fsyncs: u64,
    per_dataset: Vec<(String, DatasetCounters)>,
}

/// The per-dataset counters the sampler records (cheap relaxed loads).
#[derive(Debug, Clone, Copy)]
struct DatasetCounters {
    drains: u64,
    queries: u64,
    fsyncs: u64,
}

/// Windowed rates derived from the sample ring — `None`-free: a window
/// too short to rate over yields no [`WindowedRates`] at all.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowedRates {
    /// Coalesced drains per second over the window.
    pub drains_per_sec: f64,
    /// Rule + recommend queries per second over the window.
    pub queries_per_sec: f64,
    /// fsyncs per drain over the window (0 when no drain ran). For the
    /// service-wide view this counts shared-committer fsyncs too — the
    /// number group commit exists to push below 1.0.
    pub fsyncs_per_drain: f64,
    /// Ring samples the window was computed from.
    pub samples: usize,
}

/// The sampler thread: stop flag + condvar (for prompt shutdown) and the
/// joinable handle.
#[derive(Debug)]
struct SamplerHandle {
    stop: Arc<(Mutex<bool>, Condvar)>,
    thread: Mutex<Option<JoinHandle<()>>>,
}

/// Take one sample of every dataset's counters into the ring.
fn take_sample(datasets: &RwLock<BTreeMap<String, Arc<Dataset>>>, obs: &ServiceObs) {
    let per_dataset: Vec<(String, DatasetCounters)> = datasets
        .read()
        .expect("registry lock")
        .iter()
        .map(|(name, ds)| {
            let r = ds.metrics();
            (
                name.clone(),
                DatasetCounters {
                    drains: r.drains,
                    queries: r.rule_queries + r.recommend_queries,
                    fsyncs: r.wal_fsyncs,
                },
            )
        })
        .collect();
    obs.ring.push(ServiceSample {
        total_drains: per_dataset.iter().map(|(_, c)| c.drains).sum(),
        total_ds_fsyncs: per_dataset.iter().map(|(_, c)| c.fsyncs).sum(),
        committer_fsyncs: obs.fsyncs.load(Ordering::Relaxed),
        per_dataset,
    });
}

/// Rate a counter series; 0.0 when the window cannot be rated (counter
/// reset or a degenerate timespan).
fn rate_or_zero(series: &[(u64, u64)]) -> f64 {
    windowed_rate(series).unwrap_or(0.0)
}

/// Δlater − Δearlier of `numer` per Δ of `denom` across the window's
/// endpoints; 0.0 when the denominator did not advance.
fn per_unit(numer: (u64, u64), denom: (u64, u64)) -> f64 {
    let dn = numer.1.saturating_sub(numer.0);
    let dd = denom.1.saturating_sub(denom.0);
    if dd == 0 {
        0.0
    } else {
        dn as f64 / dd as f64
    }
}

impl Service {
    /// An empty registry.
    pub fn new() -> Service {
        Service::default()
    }

    /// Register a new dataset and start its writer thread.
    pub fn create(&self, name: &str, config: ServiceConfig) -> Result<Arc<Dataset>, ServiceError> {
        let opening = self.opening.lock().expect("opening lock");
        if opening.contains(name) {
            return Err(ServiceError::DatasetExists(name.to_string()));
        }
        let mut map = self.datasets.write().expect("registry lock");
        if map.contains_key(name) {
            return Err(ServiceError::DatasetExists(name.to_string()));
        }
        let ds = Arc::new(Dataset::spawn(name, config.into())?);
        map.insert(name.to_string(), Arc::clone(&ds));
        drop(map);
        drop(opening);
        self.ensure_sampler();
        Ok(ds)
    }

    /// The registry's shared group committer (created on first call).
    /// [`Service::open_durable`] threads it through every durable open;
    /// embedders wiring up [`Dataset::open_with`] themselves can clone it
    /// from here to join the same sync windows.
    pub fn group_committer(&self) -> Arc<GroupCommitter> {
        Arc::clone(self.committer.get_or_init(|| {
            let committer = Arc::new(GroupCommitter::new());
            // The committer reports every fsync and closed window into
            // the service-level histogram and journal.
            committer.set_observer(Arc::new(ServiceWalObserver {
                obs: Arc::clone(&self.obs),
            }));
            committer
        }))
    }

    /// Register a **durable** dataset rooted at `dir`, recovering any
    /// state already persisted there (checkpoint restore + write-ahead-log
    /// tail replay) before serving. `config` applies only if the
    /// directory holds no mined state — see [`Dataset::open`].
    ///
    /// The dataset's log syncs through the registry's shared
    /// [group committer](Service::group_committer): its drains are acked
    /// once their shared sync window closes, so concurrent durable
    /// tenants pay amortized fsyncs instead of one each per drain.
    /// Automatic checkpoints are off; use [`Service::open_durable_with`]
    /// to set a [`anno_wal::CheckpointPolicy`] or opt back into
    /// per-append sync.
    ///
    /// Recovery can take a while on a large directory, so it runs with
    /// only the *name* reserved — never the registry lock — and queries
    /// against other datasets proceed undisturbed. Two sessions racing to
    /// open the same name still cannot both replay the same directory
    /// (and two names over one directory are refused by the wal's own
    /// lock file).
    pub fn open_durable(
        &self,
        name: &str,
        config: ServiceConfig,
        dir: &std::path::Path,
    ) -> Result<Arc<Dataset>, ServiceError> {
        let options = DurabilityOptions {
            wal: WalOptions {
                sync: SyncPolicy::Grouped(self.group_committer()),
                ..WalOptions::default()
            },
            ..DurabilityOptions::default()
        };
        self.open_durable_with(name, config, dir, options)
    }

    /// [`Service::open_durable`] with explicit [`DurabilityOptions`]
    /// (sync policy, segment size, automatic checkpoint policy).
    pub fn open_durable_with(
        &self,
        name: &str,
        config: ServiceConfig,
        dir: &std::path::Path,
        options: DurabilityOptions,
    ) -> Result<Arc<Dataset>, ServiceError> {
        {
            let mut opening = self.opening.lock().expect("opening lock");
            if opening.contains(name)
                || self
                    .datasets
                    .read()
                    .expect("registry lock")
                    .contains_key(name)
            {
                return Err(ServiceError::DatasetExists(name.to_string()));
            }
            opening.insert(name.to_string());
        }
        let opened = Dataset::open_with(name, config.into(), dir, options);
        // Release the reservation and (on success) publish, atomically
        // with respect to other create/open calls on this name.
        let mut opening = self.opening.lock().expect("opening lock");
        opening.remove(name);
        let ds = Arc::new(opened?);
        self.datasets
            .write()
            .expect("registry lock")
            .insert(name.to_string(), Arc::clone(&ds));
        self.ensure_sampler();
        Ok(ds)
    }

    /// Register a **follower** replica of the leader log directory `dir`
    /// (see [`Dataset::follow`]): read-only, tailing the directory every
    /// `poll`, promotable with [`Dataset::promote`]. The name is reserved
    /// through the same protocol as a durable open, so a racing `open` or
    /// `attach` on it is refused.
    pub fn attach_follower(
        &self,
        name: &str,
        config: ServiceConfig,
        dir: &std::path::Path,
        poll: Duration,
    ) -> Result<Arc<Dataset>, ServiceError> {
        {
            let mut opening = self.opening.lock().expect("opening lock");
            if opening.contains(name)
                || self
                    .datasets
                    .read()
                    .expect("registry lock")
                    .contains_key(name)
            {
                return Err(ServiceError::DatasetExists(name.to_string()));
            }
            opening.insert(name.to_string());
        }
        let attached = Dataset::follow(name, config.into(), dir, poll);
        let mut opening = self.opening.lock().expect("opening lock");
        opening.remove(name);
        let ds = Arc::new(attached?);
        self.datasets
            .write()
            .expect("registry lock")
            .insert(name.to_string(), Arc::clone(&ds));
        self.ensure_sampler();
        Ok(ds)
    }

    /// Look up a dataset by name.
    pub fn get(&self, name: &str) -> Result<Arc<Dataset>, ServiceError> {
        self.datasets
            .read()
            .expect("registry lock")
            .get(name)
            .cloned()
            .ok_or_else(|| ServiceError::UnknownDataset(name.to_string()))
    }

    /// Unregister a dataset, stopping its writer (queued work is drained).
    pub fn remove(&self, name: &str) -> Result<(), ServiceError> {
        let ds = self
            .datasets
            .write()
            .expect("registry lock")
            .remove(name)
            .ok_or_else(|| ServiceError::UnknownDataset(name.to_string()))?;
        ds.shutdown();
        Ok(())
    }

    /// Summaries of every registered dataset, in name order.
    pub fn list(&self) -> Vec<DatasetSummary> {
        let map = self.datasets.read().expect("registry lock");
        map.values()
            .map(|ds| match ds.try_snapshot() {
                Some(snap) => DatasetSummary {
                    name: ds.name().to_string(),
                    tuples: snap.db_size(),
                    rules: snap.rules().len(),
                    epoch: snap.epoch(),
                    mined: true,
                },
                None => DatasetSummary {
                    name: ds.name().to_string(),
                    tuples: ds.live_tuples(),
                    rules: 0,
                    epoch: 0,
                    mined: false,
                },
            })
            .collect()
    }

    /// Every registered dataset, in name order. The exposition endpoint
    /// and the service-wide `stats` block iterate this.
    pub fn all(&self) -> Vec<Arc<Dataset>> {
        self.datasets
            .read()
            .expect("registry lock")
            .values()
            .cloned()
            .collect()
    }

    /// Take one counter sample into the time-series ring immediately,
    /// without waiting for the background sampler's next tick. Tests and
    /// embedders use this for deterministic windowed rates.
    pub fn sample_now(&self) {
        take_sample(&self.datasets, &self.obs);
    }

    /// Windowed rates for one dataset over the ring's last minute, or
    /// `None` until two samples covering it exist (the sampler starts
    /// with the first dataset; call [`Service::sample_now`] to force).
    pub fn windowed(&self, name: &str) -> Option<WindowedRates> {
        let window = self.obs.ring.window(WINDOW_MS);
        let series: Vec<(u64, DatasetCounters)> = window
            .iter()
            .filter_map(|(ts, sample)| {
                sample
                    .per_dataset
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|(_, c)| (*ts, *c))
            })
            .collect();
        let (first, last) = match (series.first(), series.last()) {
            (Some(f), Some(l)) if series.len() >= 2 => (*f, *l),
            _ => return None,
        };
        let drains: Vec<(u64, u64)> = series.iter().map(|(ts, c)| (*ts, c.drains)).collect();
        let queries: Vec<(u64, u64)> = series.iter().map(|(ts, c)| (*ts, c.queries)).collect();
        Some(WindowedRates {
            drains_per_sec: rate_or_zero(&drains),
            queries_per_sec: rate_or_zero(&queries),
            fsyncs_per_drain: per_unit(
                (first.1.fsyncs, last.1.fsyncs),
                (first.1.drains, last.1.drains),
            ),
            samples: series.len(),
        })
    }

    /// Service-wide windowed rates: totals across every dataset, with
    /// shared-committer fsyncs included in `fsyncs_per_drain`.
    pub fn service_windowed(&self) -> Option<WindowedRates> {
        let window = self.obs.ring.window(WINDOW_MS);
        if window.len() < 2 {
            return None;
        }
        let (Some((first_ts, first)), Some((last_ts, last))) = (window.first(), window.last())
        else {
            return None;
        };
        let drains = [
            (*first_ts, first.total_drains),
            (*last_ts, last.total_drains),
        ];
        let queries: Vec<(u64, u64)> = window
            .iter()
            .map(|(ts, s)| (*ts, s.per_dataset.iter().map(|(_, c)| c.queries).sum()))
            .collect();
        let fsyncs = (
            first.committer_fsyncs + first.total_ds_fsyncs,
            last.committer_fsyncs + last.total_ds_fsyncs,
        );
        Some(WindowedRates {
            drains_per_sec: rate_or_zero(&drains),
            queries_per_sec: rate_or_zero(&queries),
            fsyncs_per_drain: per_unit(fsyncs, (first.total_drains, last.total_drains)),
            samples: window.len(),
        })
    }

    /// The most recent `n` service-level events (group-commit windows),
    /// oldest first. Per-dataset events live on [`Dataset::events`].
    pub fn events(&self, n: usize) -> Vec<Event> {
        self.obs.journal.recent(n)
    }

    /// Service-level events ever recorded, including evicted ones.
    pub fn events_total(&self) -> u64 {
        self.obs.journal.total()
    }

    /// Latency distribution of the shared group committer's fsyncs.
    pub fn fsync_latency(&self) -> HistogramSnapshot {
        self.obs.fsync_latency.snapshot()
    }

    /// Counters of the shared group committer, if it was ever created
    /// (i.e. at least one grouped-sync dataset opened).
    pub fn committer_stats(&self) -> Option<GroupCommitStats> {
        self.committer.get().map(|c| c.stats())
    }

    /// Start the background sampler if it is not running yet. Sampling
    /// is best-effort: if the OS refuses the thread, windowed rates stay
    /// empty (datasets still serve) until [`Service::sample_now`].
    fn ensure_sampler(&self) {
        self.sampler.get_or_init(|| {
            let datasets = Arc::clone(&self.datasets);
            let obs = Arc::clone(&self.obs);
            let stop = Arc::new((Mutex::new(false), Condvar::new()));
            let thread_stop = Arc::clone(&stop);
            let thread = std::thread::Builder::new()
                .name("annod-sampler".to_string())
                .spawn(move || {
                    let (flag, cv) = &*thread_stop;
                    loop {
                        take_sample(&datasets, &obs);
                        let stopped = flag.lock().expect("sampler stop lock");
                        let (stopped, _) = cv
                            .wait_timeout(stopped, SAMPLE_INTERVAL)
                            .expect("sampler stop lock");
                        if *stopped {
                            return;
                        }
                    }
                })
                .ok();
            SamplerHandle {
                stop,
                thread: Mutex::new(thread),
            }
        });
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        // Stop the sampler first (condvar makes this prompt, not a full
        // sample interval), then every writer. Dataset::drop would stop
        // writers too, but only once the last outside Arc is gone.
        if let Some(sampler) = self.sampler.get() {
            let (flag, cv) = &*sampler.stop;
            *flag.lock().expect("sampler stop lock") = true;
            cv.notify_all();
            if let Some(handle) = sampler.thread.lock().expect("sampler join lock").take() {
                let _ = handle.join();
            }
        }
        for ds in self.datasets.read().expect("registry lock").values() {
            ds.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::UpdateOp;

    #[test]
    fn registry_create_get_list_remove() {
        let service = Service::new();
        let ds = service.create("a", ServiceConfig::default()).unwrap();
        assert!(matches!(
            service.create("a", ServiceConfig::default()),
            Err(ServiceError::DatasetExists(_))
        ));
        service.create("b", ServiceConfig::default()).unwrap();

        ds.enqueue(UpdateOp::InsertRows(vec!["1 2 X".into()]))
            .unwrap();
        ds.flush().unwrap();

        let listing = service.list();
        assert_eq!(listing.len(), 2);
        assert_eq!(listing[0].name, "a");
        assert_eq!(listing[0].tuples, 1);
        assert!(!listing[0].mined);

        assert!(service.get("a").is_ok());
        service.remove("a").unwrap();
        assert!(matches!(
            service.get("a"),
            Err(ServiceError::UnknownDataset(_))
        ));
        assert!(matches!(
            service.remove("a"),
            Err(ServiceError::UnknownDataset(_))
        ));
    }

    #[test]
    fn tenants_are_isolated() {
        let service = Service::new();
        let a = service.create("a", ServiceConfig::default()).unwrap();
        let b = service.create("b", ServiceConfig::default()).unwrap();
        a.enqueue(UpdateOp::InsertRows(vec!["1 2 X".into(), "1 2 X".into()]))
            .unwrap();
        b.enqueue(UpdateOp::InsertRows(vec!["9 Z".into()])).unwrap();
        a.mine().unwrap();
        b.mine().unwrap();
        let sa = a.snapshot().unwrap();
        let sb = b.snapshot().unwrap();
        assert_eq!(sa.db_size(), 2);
        assert_eq!(sb.db_size(), 1);
        assert_eq!(sa.dataset(), "a");
        assert_eq!(sb.dataset(), "b");
    }
}
