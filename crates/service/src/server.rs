//! Std-only transports for the [`Engine`]: TCP and a stdin REPL.
//!
//! The TCP front end is the worker-per-core sharded reactor runtime in
//! [`crate::reactor`]: connections are hashed to shard event loops at
//! accept time and parsed non-blockingly, with per-tenant admission
//! control and QoS classes. Every shard shares one [`Engine`] (itself
//! over a shared [`Service`](crate::service::Service)) — every connection
//! sees the same datasets, which is the point of a multi-tenant serving
//! layer. No async runtime: the workspace is dependency-free by
//! construction, and the reactor is built entirely on `std::net`.
//!
//! [`handle_connection`] remains as the simple blocking one-connection
//! handler for embedders; the metrics scrape listener stays
//! thread-per-request (scrapes are rare and short-lived).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use crate::protocol::Engine;
use crate::service::Service;

/// Longest command line a TCP client may send. Bounds per-connection
/// memory: without it, a newline-free byte stream would accumulate into
/// one ever-growing String until the daemon OOMs.
pub(crate) const MAX_LINE_BYTES: u64 = 64 * 1024;

/// Exponential backoff for accept-loop errors. Transient failures (one
/// aborted handshake) cost the small floor; a persistent condition like
/// fd exhaustion quickly backs off to the ceiling instead of spinning a
/// core and flooding stderr at MHz rates.
#[derive(Debug)]
pub(crate) struct AcceptBackoff {
    next: Duration,
}

impl AcceptBackoff {
    const FLOOR: Duration = Duration::from_millis(10);
    const CEILING: Duration = Duration::from_secs(1);

    pub(crate) fn new() -> AcceptBackoff {
        AcceptBackoff { next: Self::FLOOR }
    }

    /// A successful accept ends the error streak.
    pub(crate) fn reset(&mut self) {
        self.next = Self::FLOOR;
    }

    /// Sleep for the current delay, then double it (capped).
    pub(crate) fn sleep(&mut self) {
        std::thread::sleep(self.next);
        self.next = (self.next * 2).min(Self::CEILING);
    }
}

/// Read one `\n`-terminated line of at most `max` bytes. `Ok(None)` at
/// EOF; an error if the line exceeds the bound or is not UTF-8.
fn read_bounded_line<R: BufRead>(reader: &mut R, max: u64) -> std::io::Result<Option<String>> {
    let mut buf = Vec::new();
    let n = reader.by_ref().take(max + 1).read_until(b'\n', &mut buf)?;
    if n == 0 {
        return Ok(None);
    }
    if buf.last() == Some(&b'\n') {
        buf.pop();
        if buf.last() == Some(&b'\r') {
            buf.pop();
        }
    } else if n as u64 > max {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("line exceeds {max} bytes"),
        ));
    }
    String::from_utf8(buf)
        .map(Some)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

/// Serve one accepted connection until `quit`, EOF, or an I/O error.
pub fn handle_connection(engine: &Engine, stream: TcpStream) -> std::io::Result<()> {
    let peer = stream.peer_addr()?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    writeln!(writer, "OK annod ready ({peer})")?;
    while let Some(line) = read_bounded_line(&mut reader, MAX_LINE_BYTES)? {
        let reply = engine.execute(&line);
        writer.write_all(reply.to_text().as_bytes())?;
        writer.flush()?;
        if reply.quit {
            break;
        }
    }
    Ok(())
}

/// Accept connections forever on an already-bound listener, serving them
/// with the sharded reactor runtime at the default per-core shard count.
/// Transient accept errors (fd exhaustion under a connection burst,
/// aborted handshakes) back off exponentially and are survived — one
/// recoverable error must not tear down every dataset in the daemon.
pub fn serve_listener(service: Arc<Service>, listener: TcpListener) -> std::io::Result<()> {
    crate::reactor::serve_sharded(service, listener, crate::reactor::default_shards())
}

/// [`serve_listener`] with an explicit shard (event loop) count.
pub fn serve_listener_sharded(
    service: Arc<Service>,
    listener: TcpListener,
    shards: usize,
) -> std::io::Result<()> {
    crate::reactor::serve_sharded(service, listener, shards)
}

/// Bind `addr` and serve forever with the default shard count.
pub fn serve_tcp(service: Arc<Service>, addr: &str) -> std::io::Result<()> {
    serve_tcp_sharded(service, addr, crate::reactor::default_shards())
}

/// Bind `addr` and serve forever with `shards` event loops.
pub fn serve_tcp_sharded(service: Arc<Service>, addr: &str, shards: usize) -> std::io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    eprintln!(
        "annod: listening on {} (shards={})",
        listener.local_addr()?,
        shards.max(1)
    );
    serve_listener_sharded(service, listener, shards)
}

/// Most headers a metrics scrape request may carry before the blank
/// line; past this the request is answered anyway (scrapers send a
/// handful — the bound only stops a deliberate header flood).
const MAX_REQUEST_HEADERS: usize = 64;

/// Answer one HTTP request on an accepted connection: `GET /metrics`
/// (or `GET /`) returns the Prometheus exposition, anything else a
/// minimal error. HTTP/1.0 semantics — one request, `Connection: close` —
/// which every Prometheus-compatible scraper speaks; no dependency, no
/// async runtime, ~40 lines of `std::net`.
pub fn handle_metrics_request(service: &Service, stream: TcpStream) -> std::io::Result<()> {
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let Some(request) = read_bounded_line(&mut reader, MAX_LINE_BYTES)? else {
        return Ok(());
    };
    // Drain the headers so the peer never sees a reset while still
    // sending; the request line is all that matters.
    for _ in 0..MAX_REQUEST_HEADERS {
        match read_bounded_line(&mut reader, MAX_LINE_BYTES)? {
            None => break,
            Some(line) if line.is_empty() => break,
            Some(_) => {}
        }
    }
    let mut parts = request.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, body) = if !method.eq_ignore_ascii_case("GET") {
        (
            "405 Method Not Allowed",
            "only GET is supported\n".to_string(),
        )
    } else if path == "/metrics" || path == "/" {
        ("200 OK", crate::expose::render_prometheus(service))
    } else {
        ("404 Not Found", "try GET /metrics\n".to_string())
    };
    write!(
        writer,
        "HTTP/1.0 {status}\r\n\
         Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len()
    )?;
    writer.flush()
}

/// Accept scrapes forever on an already-bound listener, one short-lived
/// thread per request, with the same shed-and-survive error handling as
/// the protocol listener.
pub fn serve_metrics_listener(service: Arc<Service>, listener: TcpListener) -> std::io::Result<()> {
    let mut backoff = AcceptBackoff::new();
    for stream in listener.incoming() {
        let stream = match stream {
            Ok(stream) => {
                backoff.reset();
                stream
            }
            Err(e) => {
                eprintln!("annod: metrics accept error (continuing): {e}");
                backoff.sleep();
                continue;
            }
        };
        let service = Arc::clone(&service);
        let spawned = std::thread::Builder::new()
            .name("annod-scrape".to_string())
            .spawn(move || {
                if let Err(e) = handle_metrics_request(&service, stream) {
                    eprintln!("annod: metrics connection error: {e}");
                }
            });
        if let Err(e) = spawned {
            // Same resource-exhaustion class as an accept error: shed this
            // request (dropping the stream closes it), keep the daemon.
            eprintln!("annod: could not spawn scrape thread (shedding): {e}");
            backoff.sleep();
        }
    }
    Ok(())
}

/// Bind `addr` and serve `GET /metrics` forever.
pub fn serve_metrics_http(service: Arc<Service>, addr: &str) -> std::io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    eprintln!(
        "annod: metrics on http://{}/metrics",
        listener.local_addr()?
    );
    serve_metrics_listener(service, listener)
}

/// Interactive REPL over arbitrary reader/writer pairs (used with
/// stdin/stdout by `annod repl`, and by tests with in-memory buffers).
pub fn run_repl<R: BufRead, W: Write>(
    service: Arc<Service>,
    input: R,
    mut output: W,
) -> std::io::Result<()> {
    let engine = Engine::new(service);
    writeln!(output, "OK annod repl ready (try `help`)")?;
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let reply = engine.execute(&line);
        output.write_all(reply.to_text().as_bytes())?;
        output.flush()?;
        if reply.quit {
            break;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn repl_runs_a_scripted_session() {
        let script = "\
open db 0.4 0.7
row db 28 85 Annot_1
row db 28 85 Annot_1
row db 28 85 Annot_1
row db 28 85
mine db
recommend db tuple 3
quit
";
        let mut out = Vec::new();
        run_repl(Arc::new(Service::new()), Cursor::new(script), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("OK mined rules="), "{text}");
        assert!(text.contains("add Annot_1"), "{text}");
        assert!(text.trim_end().ends_with("OK bye"), "{text}");
    }

    #[test]
    fn bounded_line_reader_enforces_the_cap() {
        let mut ok_input = Cursor::new(b"ping\r\nquit\n".to_vec());
        assert_eq!(
            read_bounded_line(&mut ok_input, 16).unwrap().as_deref(),
            Some("ping")
        );
        assert_eq!(
            read_bounded_line(&mut ok_input, 16).unwrap().as_deref(),
            Some("quit")
        );
        assert_eq!(read_bounded_line(&mut ok_input, 16).unwrap(), None);

        // A newline-free flood must error out instead of accumulating.
        let mut flood = Cursor::new(vec![b'x'; 1024]);
        let err = read_bounded_line(&mut flood, 64).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);

        // Exactly at the cap with a terminator is fine.
        let mut exact = Cursor::new(b"abcd\n".to_vec());
        assert_eq!(
            read_bounded_line(&mut exact, 4).unwrap().as_deref(),
            Some("abcd")
        );
    }

    #[test]
    fn accept_backoff_doubles_and_resets() {
        let mut b = AcceptBackoff::new();
        assert_eq!(b.next, AcceptBackoff::FLOOR);
        b.sleep();
        b.sleep();
        assert_eq!(b.next, AcceptBackoff::FLOOR * 4);
        // A long error streak saturates at the ceiling instead of
        // doubling forever.
        for _ in 0..8 {
            b.next = (b.next * 2).min(AcceptBackoff::CEILING);
        }
        assert_eq!(b.next, AcceptBackoff::CEILING);
        b.reset();
        assert_eq!(b.next, AcceptBackoff::FLOOR);
    }

    #[test]
    fn metrics_http_round_trip() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().unwrap();
        let service = Arc::new(Service::new());
        {
            use crate::queue::UpdateOp;
            let ds = service
                .create("db", crate::service::ServiceConfig::default())
                .unwrap();
            ds.enqueue(UpdateOp::InsertRows(vec!["1 2 X".into(), "1 2 X".into()]))
                .unwrap();
            ds.mine().unwrap();
        }
        let serve_service = Arc::clone(&service);
        std::thread::spawn(move || serve_metrics_listener(serve_service, listener));

        let scrape = |request: &str| -> String {
            let stream = TcpStream::connect(addr).expect("connect loopback");
            let mut writer = stream.try_clone().unwrap();
            writer.write_all(request.as_bytes()).unwrap();
            let mut reader = BufReader::new(stream);
            let mut response = String::new();
            reader.read_to_string(&mut response).unwrap();
            response
        };

        let response = scrape("GET /metrics HTTP/1.0\r\nHost: localhost\r\n\r\n");
        assert!(response.starts_with("HTTP/1.0 200 OK"), "{response}");
        assert!(response.contains("Content-Type: text/plain"), "{response}");
        assert!(response.contains("anno_datasets 1"), "{response}");
        assert!(
            response.contains("anno_live_tuples{dataset=\"db\"} 2"),
            "{response}"
        );
        // The advertised Content-Length matches the body exactly.
        let (head, body) = response.split_once("\r\n\r\n").unwrap();
        let advertised: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(advertised, body.len());

        let missing = scrape("GET /nope HTTP/1.0\r\n\r\n");
        assert!(missing.starts_with("HTTP/1.0 404"), "{missing}");
        let put = scrape("PUT /metrics HTTP/1.0\r\n\r\n");
        assert!(put.starts_with("HTTP/1.0 405"), "{put}");
    }

    #[test]
    fn metrics_listener_survives_hostile_clients() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().unwrap();
        let service = Arc::new(Service::new());
        service
            .create("db", crate::service::ServiceConfig::default())
            .unwrap();
        let serve_service = Arc::clone(&service);
        std::thread::spawn(move || serve_metrics_listener(serve_service, listener));

        // Each abuse below must be shed by its per-request thread without
        // taking the accept loop down; writes may legitimately fail once
        // the server has given up on the connection, so errors on the
        // client side are expected and ignored.

        // 1. Early disconnect: connect and vanish without sending a byte.
        drop(TcpStream::connect(addr).expect("connect loopback"));

        // 2. Malformed request line: not HTTP at all, NUL bytes included.
        {
            let mut stream = TcpStream::connect(addr).unwrap();
            let _ = stream.write_all(b"\x00\x01 not http \x7f\r\n\r\n");
            let mut response = String::new();
            let _ = BufReader::new(stream).read_to_string(&mut response);
            // Whatever the verdict, it is an HTTP error reply, not a hang.
            assert!(
                response.starts_with("HTTP/1.0 4") || response.starts_with("HTTP/1.0 405"),
                "{response}"
            );
        }

        // 3. A newline-free request-line flood past the line cap: the
        // handler must error out instead of buffering forever.
        {
            let mut stream = TcpStream::connect(addr).unwrap();
            let _ = stream.write_all(&vec![b'x'; (MAX_LINE_BYTES as usize) + 512]);
            let mut sink = String::new();
            let _ = BufReader::new(stream).read_to_string(&mut sink);
        }

        // 4. A single oversized header line (> line cap) after a valid
        // request line: dropped mid-drain, connection closed.
        {
            let mut stream = TcpStream::connect(addr).unwrap();
            let _ = stream.write_all(b"GET /metrics HTTP/1.0\r\nX-Flood: ");
            let _ = stream.write_all(&vec![b'y'; (MAX_LINE_BYTES as usize) + 512]);
            let mut sink = String::new();
            let _ = BufReader::new(stream).read_to_string(&mut sink);
        }

        // 5. A header *count* flood: more header lines than the drain
        // bound. The request is answered anyway — the bound only stops
        // the drain, not the reply.
        {
            let mut stream = TcpStream::connect(addr).unwrap();
            let mut request = String::from("GET /metrics HTTP/1.0\r\n");
            for i in 0..(MAX_REQUEST_HEADERS + 16) {
                request.push_str(&format!("X-Pad-{i}: {i}\r\n"));
            }
            request.push_str("\r\n");
            let _ = stream.write_all(request.as_bytes());
            let mut response = String::new();
            let _ = BufReader::new(stream).read_to_string(&mut response);
            assert!(response.starts_with("HTTP/1.0 200 OK"), "{response}");
        }

        // 6. Disconnect mid-request: valid prefix, then hang up before
        // the blank line.
        {
            let mut stream = TcpStream::connect(addr).unwrap();
            let _ = stream.write_all(b"GET /metrics HTTP/1.0\r\nHost: x\r\n");
            drop(stream);
        }

        // After every abuse, a well-formed scrape still gets the full
        // exposition — the listener thread is alive and serving.
        let stream = TcpStream::connect(addr).expect("listener still accepting");
        let mut writer = stream.try_clone().unwrap();
        writer.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut response = String::new();
        BufReader::new(stream)
            .read_to_string(&mut response)
            .unwrap();
        assert!(response.starts_with("HTTP/1.0 200 OK"), "{response}");
        assert!(response.contains("anno_datasets 1"), "{response}");
    }

    #[test]
    fn tcp_round_trip() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().unwrap();
        let service = Arc::new(Service::new());
        std::thread::spawn(move || serve_listener(service, listener));

        let stream = TcpStream::connect(addr).expect("connect loopback");
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);

        let mut banner = String::new();
        reader.read_line(&mut banner).unwrap();
        assert!(banner.starts_with("OK annod ready"), "{banner}");

        for cmd in ["open db 0.4 0.7", "row db 1 2 X", "row db 1 2 X", "mine db"] {
            writeln!(writer, "{cmd}").unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert!(line.starts_with("OK"), "{cmd:?} -> {line}");
        }
        writeln!(writer, "rules db").unwrap();
        let mut block = Vec::new();
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let done = line.trim_end() == ".";
            block.push(line);
            if done {
                break;
            }
        }
        assert!(block[0].starts_with("OK"), "{block:?}");
        assert!(block.len() > 2, "some rules listed: {block:?}");
        writeln!(writer, "quit").unwrap();
        let mut bye = String::new();
        reader.read_line(&mut bye).unwrap();
        assert_eq!(bye.trim_end(), "OK bye");
    }
}
