//! Binary codec between serving-layer state and `anno-wal` payloads.
//!
//! The log crate is payload-agnostic; this module defines what `annod`
//! actually writes into it:
//!
//! * a **drain record** — the coalesced [`UpdateOp`] batches of one
//!   writer pass, logged *before* they are applied (group commit: one
//!   record, one flush per drain);
//! * a **mine record** — the `mine` command with its configuration, so a
//!   recovered dataset re-derives its first rule set at the same point in
//!   the op stream;
//! * a **checkpoint payload** — the `annodb-snapshot` text plus the
//!   miner's checkpoint text, reusing the existing exact persistence
//!   formats of `anno_store::snapshot` and `anno_mine::checkpoint`.
//!
//! Replay determinism: raw item ids are stable across recovery because
//! the snapshot format preserves interning order, and every post-
//! checkpoint interning happens inside a logged op that replays in the
//! same order (the writer sorts within-batch updates identically on the
//! live and replay paths — see `dataset::sort_for_segment_locality`).
//!
//! All integers are little-endian; strings are u32-length-prefixed UTF-8.
//! Decoding is defensive — a hostile or bit-rotted payload yields an
//! `Err`, never a panic or an unbounded allocation.

use anno_mine::{CountingStrategy, IncrementalConfig, Thresholds};
use anno_store::{AnnotationUpdate, Item, Tuple, TupleId};

use crate::queue::UpdateOp;

/// One logged record of the serving layer.
#[derive(Debug, Clone)]
pub(crate) enum WalRecord {
    /// The coalesced batches of one writer drain, in application order.
    Drain(Vec<UpdateOp>),
    /// A `mine` with this configuration happened at this log position.
    Mine(IncrementalConfig),
}

const KIND_DRAIN: u8 = 0;
const KIND_MINE: u8 = 1;

const TAG_INSERT_ROWS: u8 = 0;
const TAG_INSERT_TUPLES: u8 = 1;
const TAG_ANNOTATE: u8 = 2;
const TAG_ANNOTATE_NAMED: u8 = 3;
const TAG_REMOVE_ANNOTATIONS: u8 = 4;
const TAG_REMOVE_NAMED: u8 = 5;
const TAG_DELETE_TUPLES: u8 = 6;

/// Serialize one drain record from the writer's coalesced batches.
pub(crate) fn encode_drain(ops: &[UpdateOp]) -> Vec<u8> {
    let mut out = Vec::new();
    out.push(KIND_DRAIN);
    put_u32(&mut out, ops.len() as u32);
    for op in ops {
        encode_op(&mut out, op);
    }
    out
}

/// Serialize one mine record.
pub(crate) fn encode_mine(config: &IncrementalConfig) -> Vec<u8> {
    let mut out = Vec::new();
    out.push(KIND_MINE);
    put_u64(&mut out, config.thresholds.min_support.to_bits());
    put_u64(&mut out, config.thresholds.min_confidence.to_bits());
    put_u64(&mut out, config.retention.to_bits());
    out.push(match config.counting {
        CountingStrategy::HashTree => 0,
        CountingStrategy::DirectScan => 1,
        CountingStrategy::ParallelScan => 2,
    });
    out
}

/// Deserialize one record.
pub(crate) fn decode(bytes: &[u8]) -> Result<WalRecord, String> {
    let mut cur = Cursor::new(bytes);
    let record = match cur.u8()? {
        KIND_DRAIN => {
            let count = cur.u32()? as usize;
            let mut ops = Vec::new();
            for _ in 0..count {
                ops.push(decode_op(&mut cur)?);
            }
            WalRecord::Drain(ops)
        }
        KIND_MINE => {
            // Range-check before constructing: `Thresholds::new` asserts
            // its fractions, so an out-of-range (or NaN) value from a
            // CRC-coincident corruption or crafted file must surface as
            // `Err`, never a panic.
            let fraction = |x: f64, what: &str| {
                if x.is_finite() && (0.0..=1.0).contains(&x) {
                    Ok(x)
                } else {
                    Err(format!("mine record {what} out of range: {x}"))
                }
            };
            let min_support = fraction(f64::from_bits(cur.u64()?), "min_support")?;
            let min_confidence = fraction(f64::from_bits(cur.u64()?), "min_confidence")?;
            let retention = fraction(f64::from_bits(cur.u64()?), "retention")?;
            let counting = match cur.u8()? {
                0 => CountingStrategy::HashTree,
                1 => CountingStrategy::DirectScan,
                2 => CountingStrategy::ParallelScan,
                other => return Err(format!("unknown counting strategy tag {other}")),
            };
            WalRecord::Mine(IncrementalConfig {
                thresholds: Thresholds::new(min_support, min_confidence),
                retention,
                counting,
            })
        }
        other => return Err(format!("unknown wal record kind {other}")),
    };
    cur.finish()?;
    Ok(record)
}

/// Serialize a checkpoint payload: the relation snapshot text, the miner
/// checkpoint text once mined, the dataset's publish sequence number at
/// capture time — recovery seeds its own publish counter from it so a
/// client comparing snapshot epochs never sees time run backwards across
/// a restart — and the discovery-index text, so the incrementally
/// maintained top-k recovers (and replicates) without a rescan.
pub(crate) fn encode_checkpoint(
    snapshot: &str,
    miner: Option<&str>,
    publish_seq: u64,
    discovery: Option<&str>,
) -> Vec<u8> {
    let mut out = Vec::new();
    put_str(&mut out, snapshot);
    match miner {
        Some(text) => {
            out.push(1);
            put_str(&mut out, text);
        }
        None => out.push(0),
    }
    put_u64(&mut out, publish_seq);
    match discovery {
        Some(text) => {
            out.push(1);
            put_str(&mut out, text);
        }
        None => out.push(0),
    }
    out
}

/// A decoded checkpoint payload. Optional trailing fields decode to
/// `None` when absent: payloads written before each field was added
/// simply end earlier, and the caller substitutes a safe derivation (a
/// conservative publish seed; a discovery rebuild from the miner table).
pub(crate) struct CheckpointParts {
    pub snapshot: String,
    pub miner: Option<String>,
    pub publish_seq: Option<u64>,
    pub discovery: Option<String>,
}

/// Deserialize a checkpoint payload back into its text documents and the
/// captured publish sequence. Trailing fields are version-optional — see
/// [`CheckpointParts`] — but a *truncated* field is still an error.
pub(crate) fn decode_checkpoint(bytes: &[u8]) -> Result<CheckpointParts, String> {
    let mut cur = Cursor::new(bytes);
    let snapshot = cur.str()?;
    let miner = match cur.u8()? {
        0 => None,
        1 => Some(cur.str()?),
        other => return Err(format!("bad miner-presence flag {other}")),
    };
    let publish_seq = if cur.exhausted() {
        None
    } else {
        Some(cur.u64()?)
    };
    let discovery = if cur.exhausted() {
        None
    } else {
        match cur.u8()? {
            0 => None,
            1 => Some(cur.str()?),
            other => return Err(format!("bad discovery-presence flag {other}")),
        }
    };
    cur.finish()?;
    Ok(CheckpointParts {
        snapshot,
        miner,
        publish_seq,
        discovery,
    })
}

fn encode_op(out: &mut Vec<u8>, op: &UpdateOp) {
    match op {
        UpdateOp::InsertRows(lines) => {
            out.push(TAG_INSERT_ROWS);
            put_u32(out, lines.len() as u32);
            for line in lines {
                put_str(out, line);
            }
        }
        UpdateOp::InsertTuples(tuples) => {
            out.push(TAG_INSERT_TUPLES);
            put_u32(out, tuples.len() as u32);
            for tuple in tuples {
                put_u32(out, tuple.items().len() as u32);
                for item in tuple.items() {
                    put_u32(out, item.raw());
                }
            }
        }
        UpdateOp::Annotate(updates) => {
            out.push(TAG_ANNOTATE);
            encode_updates(out, updates);
        }
        UpdateOp::AnnotateNamed(named) => {
            out.push(TAG_ANNOTATE_NAMED);
            encode_named(out, named);
        }
        UpdateOp::RemoveAnnotations(updates) => {
            out.push(TAG_REMOVE_ANNOTATIONS);
            encode_updates(out, updates);
        }
        UpdateOp::RemoveNamed(named) => {
            out.push(TAG_REMOVE_NAMED);
            encode_named(out, named);
        }
        UpdateOp::DeleteTuples(tids) => {
            out.push(TAG_DELETE_TUPLES);
            put_u32(out, tids.len() as u32);
            for tid in tids {
                put_u32(out, tid.0);
            }
        }
    }
}

fn decode_op(cur: &mut Cursor<'_>) -> Result<UpdateOp, String> {
    let tag = cur.u8()?;
    let count = cur.u32()? as usize;
    Ok(match tag {
        TAG_INSERT_ROWS => {
            let mut lines = Vec::new();
            for _ in 0..count {
                lines.push(cur.str()?);
            }
            UpdateOp::InsertRows(lines)
        }
        TAG_INSERT_TUPLES => {
            let mut tuples = Vec::new();
            for _ in 0..count {
                let items = cur.u32()? as usize;
                let mut raw = Vec::new();
                for _ in 0..items {
                    raw.push(Item::from_raw(cur.u32()?));
                }
                tuples.push(Tuple::from_items(raw));
            }
            UpdateOp::InsertTuples(tuples)
        }
        TAG_ANNOTATE => UpdateOp::Annotate(decode_updates(cur, count)?),
        TAG_ANNOTATE_NAMED => UpdateOp::AnnotateNamed(decode_named(cur, count)?),
        TAG_REMOVE_ANNOTATIONS => UpdateOp::RemoveAnnotations(decode_updates(cur, count)?),
        TAG_REMOVE_NAMED => UpdateOp::RemoveNamed(decode_named(cur, count)?),
        TAG_DELETE_TUPLES => {
            let mut tids = Vec::new();
            for _ in 0..count {
                tids.push(TupleId(cur.u32()?));
            }
            UpdateOp::DeleteTuples(tids)
        }
        other => return Err(format!("unknown update-op tag {other}")),
    })
}

fn encode_updates(out: &mut Vec<u8>, updates: &[AnnotationUpdate]) {
    put_u32(out, updates.len() as u32);
    for u in updates {
        put_u32(out, u.tuple.0);
        put_u32(out, u.annotation.raw());
    }
}

fn decode_updates(cur: &mut Cursor<'_>, count: usize) -> Result<Vec<AnnotationUpdate>, String> {
    let mut updates = Vec::new();
    for _ in 0..count {
        let tuple = TupleId(cur.u32()?);
        let annotation = Item::from_raw(cur.u32()?);
        updates.push(AnnotationUpdate { tuple, annotation });
    }
    Ok(updates)
}

fn encode_named(out: &mut Vec<u8>, named: &[(TupleId, String)]) {
    put_u32(out, named.len() as u32);
    for (tid, name) in named {
        put_u32(out, tid.0);
        put_str(out, name);
    }
}

fn decode_named(cur: &mut Cursor<'_>, count: usize) -> Result<Vec<(TupleId, String)>, String> {
    let mut named = Vec::new();
    for _ in 0..count {
        let tid = TupleId(cur.u32()?);
        named.push((tid, cur.str()?));
    }
    Ok(named)
}

fn put_u32(out: &mut Vec<u8>, x: u32) {
    out.extend_from_slice(&x.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, x: u64) {
    out.extend_from_slice(&x.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Bounds-checked reader over a payload slice. Lengths are validated
/// against the remaining bytes before any allocation, so a corrupted
/// length cannot request gigabytes.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Cursor<'a> {
        Cursor { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.bytes.len() - self.pos < n {
            return Err(format!(
                "payload truncated: need {n} bytes at offset {}, have {}",
                self.pos,
                self.bytes.len() - self.pos
            ));
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        let bytes: [u8; 4] = self
            .take(4)?
            .try_into()
            .map_err(|_| "short u32 field".to_string())?;
        Ok(u32::from_le_bytes(bytes))
    }

    fn u64(&mut self) -> Result<u64, String> {
        let bytes: [u8; 8] = self
            .take(8)?
            .try_into()
            .map_err(|_| "short u64 field".to_string())?;
        Ok(u64::from_le_bytes(bytes))
    }

    fn str(&mut self) -> Result<String, String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| format!("bad utf-8 in payload: {e}"))
    }

    fn exhausted(&self) -> bool {
        self.pos == self.bytes.len()
    }

    fn finish(self) -> Result<(), String> {
        if self.pos != self.bytes.len() {
            return Err(format!(
                "{} trailing bytes after record",
                self.bytes.len() - self.pos
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ops() -> Vec<UpdateOp> {
        vec![
            UpdateOp::InsertRows(vec!["28 85 Annot_1".into(), "17 99".into()]),
            UpdateOp::InsertTuples(vec![
                Tuple::from_items(vec![Item::data(3), Item::annotation(1)]),
                Tuple::from_items(vec![]),
            ]),
            UpdateOp::Annotate(vec![AnnotationUpdate {
                tuple: TupleId(7),
                annotation: Item::annotation(2),
            }]),
            UpdateOp::AnnotateNamed(vec![(TupleId(0), "weird name %".into())]),
            UpdateOp::RemoveAnnotations(vec![AnnotationUpdate {
                tuple: TupleId(1),
                annotation: Item::annotation(2),
            }]),
            UpdateOp::RemoveNamed(vec![(TupleId(2), "Annot_1".into())]),
            UpdateOp::DeleteTuples(vec![TupleId(4), TupleId(5)]),
        ]
    }

    fn op_eq(a: &UpdateOp, b: &UpdateOp) -> bool {
        // UpdateOp has no PartialEq; compare through the codec's own
        // canonical bytes (injective by construction).
        let mut ba = Vec::new();
        let mut bb = Vec::new();
        encode_op(&mut ba, a);
        encode_op(&mut bb, b);
        ba == bb
    }

    #[test]
    fn drain_records_roundtrip() {
        let ops = sample_ops();
        let bytes = encode_drain(&ops);
        match decode(&bytes).unwrap() {
            WalRecord::Drain(back) => {
                assert_eq!(back.len(), ops.len());
                for (a, b) in ops.iter().zip(&back) {
                    assert!(op_eq(a, b), "{a:?} != {b:?}");
                }
            }
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn mine_records_roundtrip_config_bit_exactly() {
        let config = IncrementalConfig {
            thresholds: Thresholds::new(1.0 / 3.0, 0.755),
            retention: 0.61803,
            counting: CountingStrategy::DirectScan,
        };
        let bytes = encode_mine(&config);
        match decode(&bytes).unwrap() {
            WalRecord::Mine(back) => {
                assert_eq!(back.thresholds.min_support, 1.0 / 3.0);
                assert_eq!(back.thresholds.min_confidence, 0.755);
                assert_eq!(back.retention, 0.61803);
                assert!(matches!(back.counting, CountingStrategy::DirectScan));
            }
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn checkpoint_payloads_roundtrip() {
        let parts = decode_checkpoint(&encode_checkpoint(
            "snapshot text",
            Some("miner text"),
            17,
            Some("discovery text"),
        ))
        .unwrap();
        assert_eq!(parts.snapshot, "snapshot text");
        assert_eq!(parts.miner.as_deref(), Some("miner text"));
        assert_eq!(parts.publish_seq, Some(17));
        assert_eq!(parts.discovery.as_deref(), Some("discovery text"));
        let parts = decode_checkpoint(&encode_checkpoint("pre-mine", None, 0, None)).unwrap();
        assert_eq!(parts.snapshot, "pre-mine");
        assert_eq!(parts.miner, None);
        assert_eq!(parts.publish_seq, Some(0));
        assert_eq!(parts.discovery, None);
    }

    #[test]
    fn pre_sequence_checkpoint_payloads_still_decode() {
        // The PR-3 on-disk format ended right after the miner field; a
        // durable directory written by it must keep opening.
        let mut legacy = Vec::new();
        put_str(&mut legacy, "old snapshot");
        legacy.push(1);
        put_str(&mut legacy, "old miner");
        let parts = decode_checkpoint(&legacy).unwrap();
        assert_eq!(parts.snapshot, "old snapshot");
        assert_eq!(parts.miner.as_deref(), Some("old miner"));
        assert_eq!(
            parts.publish_seq, None,
            "legacy payloads carry no publish sequence"
        );
        assert_eq!(parts.discovery, None);
        // The PR-5..7 format ended right after the publish sequence; it
        // decodes with `discovery: None` and the caller rebuilds instead.
        let mut mid = Vec::new();
        put_str(&mut mid, "mid snapshot");
        mid.push(0);
        put_u64(&mut mid, 42);
        let parts = decode_checkpoint(&mid).unwrap();
        assert_eq!(parts.snapshot, "mid snapshot");
        assert_eq!(parts.publish_seq, Some(42));
        assert_eq!(
            parts.discovery, None,
            "pre-discovery payloads decode without a discovery document"
        );
        // A *truncated* trailing field is still an error, not a silent None.
        let mut torn = encode_checkpoint("s", None, 7, None);
        torn.truncate(torn.len() - 3);
        assert!(decode_checkpoint(&torn).is_err());
        let mut torn = encode_checkpoint("s", None, 7, Some("d"));
        torn.truncate(torn.len() - 1);
        assert!(decode_checkpoint(&torn).is_err());
    }

    #[test]
    fn hostile_payloads_error_instead_of_panicking() {
        assert!(decode(&[]).is_err());
        assert!(decode(&[9]).is_err(), "unknown kind");
        assert!(decode(&[KIND_DRAIN, 1, 0, 0, 0]).is_err(), "truncated op");
        // A length field pointing past the end must not allocate or panic.
        let mut bytes = encode_drain(&[UpdateOp::InsertRows(vec!["abc".into()])]);
        let len = bytes.len();
        bytes[len - 4] = 0xFF; // grow the string's recorded length
        assert!(decode(&bytes).is_err());
        // Trailing garbage is rejected, not silently ignored.
        let mut ok = encode_drain(&[]);
        ok.push(0);
        assert!(decode(&ok).is_err());
        assert!(decode_checkpoint(&[2]).is_err());
        // A mine record with out-of-range threshold bits (NaN here) must
        // be an Err, not an assert inside Thresholds::new.
        let mut mine = encode_mine(&IncrementalConfig::default());
        mine[1..9].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        assert!(decode(&mine).is_err());
        let mut mine = encode_mine(&IncrementalConfig::default());
        mine[17..25].copy_from_slice(&2.5f64.to_bits().to_le_bytes());
        assert!(decode(&mine).is_err());
    }
}
