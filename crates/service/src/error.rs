//! Error type shared by the service, protocol, and server layers.

use std::fmt;

/// Anything that can go wrong serving correlations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// No dataset registered under this name.
    UnknownDataset(String),
    /// A dataset with this name already exists.
    DatasetExists(String),
    /// The dataset has not been mined yet; rule/recommendation queries
    /// need a published snapshot.
    NotMined(String),
    /// The dataset's writer has shut down (dataset was dropped).
    ShutDown(String),
    /// A protocol command or its arguments could not be parsed.
    BadCommand(String),
    /// An I/O problem in the TCP/REPL server.
    Io(String),
    /// The write-ahead log failed, refused to validate recovered state,
    /// or a durability operation was asked of a non-durable dataset.
    Durability(String),
    /// A write verb reached a follower replica. Followers fence every
    /// mutation (their state is replayed from the leader's log); `promote`
    /// the dataset to accept writes.
    ReadOnlyRole(String),
    /// Admission control shed a write: the dataset's bounded update queue
    /// (or its grouped-sync unacked-drain window) is full. A soft error —
    /// nothing was enqueued; back off and retry once the writer drains.
    Overloaded {
        /// The saturated dataset.
        dataset: String,
        /// Individual updates pending at refusal time.
        pending: u64,
        /// The queue's admission cap on pending updates.
        cap: u64,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnknownDataset(name) => write!(f, "unknown dataset {name:?}"),
            ServiceError::DatasetExists(name) => write!(f, "dataset {name:?} already exists"),
            ServiceError::NotMined(name) => {
                write!(
                    f,
                    "dataset {name:?} has no published snapshot; run `mine` first"
                )
            }
            ServiceError::ShutDown(name) => {
                write!(f, "dataset {name:?} writer has shut down")
            }
            ServiceError::BadCommand(msg) => write!(f, "bad command: {msg}"),
            ServiceError::Io(msg) => write!(f, "io error: {msg}"),
            ServiceError::Durability(msg) => write!(f, "durability error: {msg}"),
            ServiceError::ReadOnlyRole(name) => {
                write!(
                    f,
                    "dataset {name:?} is a read-only follower; `promote` it to accept writes"
                )
            }
            ServiceError::Overloaded {
                dataset,
                pending,
                cap,
            } => {
                write!(
                    f,
                    "overloaded: dataset {dataset:?} write queue is full \
                     (pending={pending} cap={cap}); retry after the writer drains"
                )
            }
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<std::io::Error> for ServiceError {
    fn from(e: std::io::Error) -> Self {
        ServiceError::Io(e.to_string())
    }
}
