//! One served dataset: an [`AnnotatedRelation`] + [`IncrementalMiner`]
//! pair behind a coalescing write queue and an atomically published
//! snapshot.
//!
//! # Concurrency contract
//!
//! * **Readers never block on writers.** [`Dataset::snapshot`] takes the
//!   `published` read lock only long enough to clone an `Arc` — the write
//!   side takes the matching write lock only to swap the pointer. Neither
//!   side holds it across real work, so a query served from a snapshot
//!   proceeds even while a maintenance batch is mid-flight on the write
//!   mutex.
//! * **One writer.** All mutations funnel through the queue into a single
//!   writer thread, which owns the `write` mutex during a drain and
//!   mutates the relation **in place** — the relation is a persistent
//!   segment store, so a mutation copy-on-writes at most the one segment
//!   (and posting bitset) a published snapshot still shares. Publishing
//!   clones the relation at O(#segments) pointer cost. The old
//!   `Arc::make_mut` path — one full O(|D|) relation clone per effective
//!   drain, because the published snapshot always held a second
//!   reference — is gone; publish cost now scales with the drain's
//!   delta, as `benches/publish.rs` measures.
//! * **Epochs.** The relation's mutation epoch advances many times inside
//!   one drain, but snapshots are built only at drain boundaries:
//!   [`publish`] asserts the published relation epoch never regresses,
//!   and a reader can only ever observe a pre- or post-drain epoch,
//!   never an intermediate one (the concurrency suite pins this down).
//! * **Exactness.** The writer applies each coalesced batch through the
//!   miner's §4.3 incremental maintenance, so every published snapshot's
//!   rules are exactly what a from-scratch mine would produce
//!   ([`Dataset::verify`] checks this on demand).

use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use anno_discover::{DiscoveryIndex, DiscoverySnapshot};
use anno_metrics::{Event, EventJournal};
use anno_mine::{IncrementalConfig, IncrementalMiner};
use anno_store::fxhash::FxHashSet;
use anno_store::{
    parse_tuple_line, snapshot_from_string, snapshot_to_string, AnnotatedRelation,
    AnnotationUpdate, ItemKind, Tuple, TupleId,
};
use anno_wal::{
    checkpoint as wal_checkpoint, CheckpointPolicy, GroupCommitStats, LogPosition, SyncTicket,
    TailCursor, Wal, WalError, WalObserver, WalOptions, WalStats,
};

use crate::error::ServiceError;
use crate::metrics::{timed, DatasetObs, Metrics, MetricsReport};
use crate::queue::{coalesce, QosClass, QueueState, UpdateOp};
use crate::snapshot::RuleSnapshot;
use crate::walcodec::{self, WalRecord};

/// How a durable dataset runs its write-ahead log: the log's own tuning
/// (segment size, [sync policy](anno_wal::SyncPolicy) — pass
/// `SyncPolicy::Grouped` to share one fsync window across tenants) plus
/// the [`CheckpointPolicy`] under which the writer checkpoints by itself.
/// The default is the PR-3 behavior: per-append fsync, no auto
/// checkpoints.
#[derive(Debug, Clone, Default)]
pub struct DurabilityOptions {
    /// Write-ahead-log tuning, including the sync policy.
    pub wal: WalOptions,
    /// When the writer should checkpoint without being asked. Disabled
    /// by default (all thresholds `None`).
    pub auto_checkpoint: CheckpointPolicy,
    /// Test hook: sleep this long inside the checkpoint *encode* step.
    /// Lets the offload regression test hold an automatic checkpoint's
    /// helper thread mid-encode and prove concurrent drains do not block
    /// on it. `None` (no stall) in production.
    pub encode_stall_for_tests: Option<Duration>,
}

/// Which side of replication a dataset is on. A **leader** owns its log
/// directory (it holds `wal.lock`) and accepts writes; a **follower**
/// tails another process's directory read-only, replays its records, and
/// fences every mutation with [`ServiceError::ReadOnlyRole`] until
/// [`Dataset::promote`] turns it into the leader.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Accepts writes; owns the log directory.
    Leader,
    /// Read-only replica replaying a leader's shipped log.
    Follower,
}

impl Role {
    /// Short label for stats lines: `leader` or `follower`.
    pub fn label(&self) -> &'static str {
        match self {
            Role::Leader => "leader",
            Role::Follower => "follower",
        }
    }
}

/// Point-in-time progress of a follower's tail loop — the lag a
/// replication dashboard watches. Sequence numbers are log *segment*
/// numbers (the WAL's coarse clock); `bytes_behind` is the exact byte lag.
#[derive(Debug, Clone, Default)]
pub struct ReplicationStatus {
    /// Leader log segment the follower has applied up to.
    pub applied_seq: u64,
    /// Highest segment present in the leader's directory at the last poll.
    pub leader_seq: u64,
    /// On-disk log bytes not yet applied.
    pub bytes_behind: u64,
    /// Shipped records applied since attach.
    pub records_applied: u64,
    /// Checkpoint restarts the tail cursor performed.
    pub restarts: u64,
    /// Tail polls completed since attach.
    pub polls: u64,
    /// Set when the tail loop stopped on undecodable or unappliable
    /// shipped state; reads keep serving the last good prefix.
    pub failed: Option<String>,
}

/// Shared state between a follower's tail thread and the dataset handle.
#[derive(Default)]
struct FollowerCtl {
    state: Mutex<FollowerProgress>,
    cv: Condvar,
}

#[derive(Default)]
struct FollowerProgress {
    stop: bool,
    /// Highest poll number a `catchup` has asked for.
    poll_requests: u64,
    /// Polls the loop has begun (a catchup must wait for a poll that
    /// *starts* after the request, or an in-flight poll could satisfy it
    /// with a pre-request view of the directory).
    polls_started: u64,
    polls_done: u64,
    applied_seq: u64,
    leader_seq: u64,
    bytes_behind: u64,
    records_applied: u64,
    restarts: u64,
    failed: Option<String>,
}

impl FollowerProgress {
    fn status(&self) -> ReplicationStatus {
        ReplicationStatus {
            applied_seq: self.applied_seq,
            leader_seq: self.leader_seq,
            bytes_behind: self.bytes_behind,
            records_applied: self.records_applied,
            restarts: self.restarts,
            polls: self.polls_done,
            failed: self.failed.clone(),
        }
    }
}

impl FollowerCtl {
    fn stop(&self) {
        let mut st = self.state.lock().expect("follower lock");
        st.stop = true;
        self.cv.notify_all();
    }
}

/// A live follower attachment: the tail thread and its control block.
struct FollowerHandle {
    ctl: Arc<FollowerCtl>,
    dir: PathBuf,
    thread: Option<JoinHandle<()>>,
}

/// The writer acks a grouped drain only when its sync ticket resolves;
/// this caps how many unacked drains may pipeline behind one sync window
/// before the writer stops to retire the oldest.
const MAX_PIPELINED_ACKS: usize = 32;

/// Maintenance events each dataset retains (oldest evicted first).
const JOURNAL_CAPACITY: usize = 256;

/// Feeds the log's fsync reports into the owning dataset's metrics.
/// Holds only the `Arc<Metrics>` — never `Inner` — so no reference
/// cycle forms through the `Wal` the `Inner` owns.
struct DatasetWalObserver {
    metrics: Arc<Metrics>,
}

impl WalObserver for DatasetWalObserver {
    fn fsync(&self, nanos: u64) {
        self.metrics.record_fsync(nanos);
    }
}

/// Ranked discovery pairs a snapshot materializes per side (cross- and
/// within-namespace). Bounds snapshot build cost per publish; `discover`
/// queries clamp `top=K` to it.
pub const DISCOVERY_TOPK_CAP: usize = 64;

struct WriteState {
    relation: AnnotatedRelation,
    miner: Option<IncrementalMiner>,
    /// The incrementally maintained correlation-discovery index, refreshed
    /// from the miner's touch log after every maintenance pass (empty and
    /// inert until mined).
    discovery: DiscoveryIndex,
}

struct Inner {
    name: String,
    /// The mining configuration. Mutable because replication moves it:
    /// a follower adopts the configuration carried by replayed `mine`
    /// records and restored checkpoints, and promotion installs the
    /// recovered one. Lock order: write mutex before config, never the
    /// reverse (readers take config alone).
    config: Mutex<IncrementalConfig>,
    write: Mutex<WriteState>,
    published: RwLock<Option<Arc<RuleSnapshot>>>,
    /// The discovery top-k published alongside `published`, carrying the
    /// same epoch — a reader pairing the two verbs sees one instant.
    /// Swapped under the write mutex by the same [`publish`] call.
    published_discovery: RwLock<Option<Arc<DiscoverySnapshot>>>,
    /// Positive-only lookaside over the vocabulary HAMT for protocol-side
    /// name resolution, one map per [`ItemKind`] namespace (indexed by the
    /// kind's discriminant). Interning is append-only, so a cached hit can
    /// never go stale; misses are *never* cached — a later drain may
    /// intern the name.
    name_cache: [RwLock<anno_store::fxhash::FxHashMap<String, anno_store::Item>>; 3],
    queue: Mutex<QueueState>,
    queue_cv: Condvar,
    publish_seq: AtomicU64,
    /// Relation epoch of the latest published snapshot. Publishes happen
    /// only at drain boundaries; this asserts they never move backwards
    /// (and never expose a mid-drain epoch twice).
    published_relation_epoch: AtomicU64,
    /// Live tuple count, refreshed by the writer after each drain so
    /// listings never contend on the write mutex.
    tuples_hint: AtomicU64,
    /// Shared (`Arc`) so the WAL observer can record fsync latencies
    /// into the same histograms without holding a reference to `Inner`
    /// (which would cycle: `Inner` owns the `Wal` that owns the
    /// observer).
    metrics: Arc<Metrics>,
    /// Bounded journal of maintenance events (recovery, checkpoints,
    /// fencing) — the `events` verb reads it.
    journal: Arc<EventJournal>,
    /// The write-ahead log, when the dataset was opened with a durability
    /// directory. Lock order: checkpoint lock before write mutex before
    /// wal mutex, never the reverse — every mutation path (writer drains,
    /// `mine`, `checkpoint`) appends under the write mutex, so a recorded
    /// log position is always consistent with the applied state it claims
    /// to cover. (`wal_stats` takes the wal mutex alone, which respects
    /// the order.) `None` for memory-only datasets *and* for followers —
    /// a follower must not hold the leader's `wal.lock`; promotion
    /// installs a log here.
    durability: Mutex<Option<Wal>>,
    /// Serializes checkpoints (manual vs. the writer's automatic ones):
    /// two racing checkpoints could commit their payloads out of position
    /// order and compact records the surviving checkpoint does not cover.
    /// Held across capture → encode → commit; the write mutex is only
    /// taken for the capture, so the O(|D|) encode stalls nobody.
    ckpt_lock: Mutex<()>,
    /// The in-flight automatic-checkpoint helper thread, when one is
    /// running. Auto checkpoints capture under `ckpt_lock` on the writer
    /// thread but encode-and-commit here, so a drain is never blocked on
    /// an O(|D|) encode. A manual checkpoint **joins** this first (under
    /// `ckpt_lock`): an older in-flight commit landing after a newer
    /// manual one would record a position whose follow-up segments the
    /// newer checkpoint already compacted.
    ckpt_helper: Mutex<Option<JoinHandle<()>>>,
    /// The policy under which the writer checkpoints by itself after a
    /// drain. Disabled (never fires) for memory-only datasets. Mutable so
    /// promotion can install the policy of its [`DurabilityOptions`].
    auto_checkpoint: Mutex<CheckpointPolicy>,
    /// `true` while the dataset is a read-only follower replica; every
    /// mutation path checks it first. Flipped exactly once, by
    /// [`Dataset::promote`].
    follower: AtomicBool,
    /// The follower attachment (tail thread + control block), when one
    /// is live. Promotion takes it out.
    replication: Mutex<Option<FollowerHandle>>,
    /// See [`DurabilityOptions::encode_stall_for_tests`].
    encode_stall: Mutex<Option<Duration>>,
}

/// A served dataset handle. Cheap to clone via `Arc` (the [`Service`]
/// registry hands out `Arc<Dataset>`); all methods take `&self`.
///
/// [`Service`]: crate::service::Service
pub struct Dataset {
    inner: Arc<Inner>,
    worker: Mutex<Option<JoinHandle<()>>>,
}

impl Dataset {
    /// Create an empty, purely in-memory dataset and start its writer
    /// thread. Errs (instead of panicking) if the OS refuses a new
    /// thread, so a registry holding its lock across creation survives
    /// resource exhaustion.
    pub fn spawn(name: &str, config: IncrementalConfig) -> Result<Dataset, ServiceError> {
        let state = WriteState {
            relation: AnnotatedRelation::new(name),
            miner: None,
            discovery: DiscoveryIndex::new(),
        };
        Dataset::boot(
            name,
            config,
            state,
            None,
            0,
            CheckpointPolicy::default(),
            None,
            Role::Leader,
        )
    }

    /// Open a **durable** dataset rooted at directory `dir`: restore the
    /// latest checkpoint (relation snapshot + miner checkpoint, screened
    /// with [`IncrementalMiner::validate_against`]), replay the log tail
    /// through the same apply path the live writer uses, then start the
    /// writer with every future drain logged before it is applied.
    ///
    /// A torn or bit-rotted log tail is recovered to the last intact
    /// record and reported to stderr, never fatal. `config` only applies
    /// when the directory holds no mined state; a restored miner keeps the
    /// configuration it was checkpointed with (and any replayed `mine`
    /// record carries its own).
    pub fn open(
        name: &str,
        config: IncrementalConfig,
        dir: &Path,
    ) -> Result<Dataset, ServiceError> {
        Dataset::open_with(name, config, dir, DurabilityOptions::default())
    }

    /// [`Dataset::open`] with explicit [`DurabilityOptions`]: WAL tuning
    /// (segment size, per-append vs. grouped sync) and the automatic
    /// checkpoint policy the writer enforces after each drain.
    pub fn open_with(
        name: &str,
        config: IncrementalConfig,
        dir: &Path,
        options: DurabilityOptions,
    ) -> Result<Dataset, ServiceError> {
        let (wal, recovery) =
            Wal::open(dir, options.wal).map_err(|e| ServiceError::Durability(e.to_string()))?;
        let rec = recover_write_state(name, config, recovery)?;
        let ds = Dataset::boot(
            name,
            rec.config,
            rec.state,
            Some(wal),
            rec.publish_seed,
            options.auto_checkpoint,
            options.encode_stall_for_tests,
            Role::Leader,
        )?;
        ds.inner.journal.record(
            "recovery",
            format!(
                "checkpoint={} replayed_records={}",
                rec.restored_checkpoint, rec.replayed_records
            ),
        );
        if let Some(damage) = rec.damage {
            ds.inner.journal.record("truncated_tail", damage);
        }
        Ok(ds)
    }

    /// Shared constructor: publish recovered state (if mined) and start
    /// the writer thread.
    #[allow(clippy::too_many_arguments)]
    fn boot(
        name: &str,
        config: IncrementalConfig,
        state: WriteState,
        mut wal: Option<Wal>,
        publish_seed: u64,
        auto_checkpoint: CheckpointPolicy,
        encode_stall: Option<Duration>,
        role: Role,
    ) -> Result<Dataset, ServiceError> {
        let tuples = state.relation.len() as u64;
        let metrics = Arc::new(Metrics::new());
        if let Some(wal) = &mut wal {
            // The log reports its own fsyncs (per-append syncs, segment
            // seals) into this dataset's histograms; grouped-sync fsyncs
            // belong to the shared committer and are observed at the
            // service level instead.
            wal.set_observer(Arc::new(DatasetWalObserver {
                metrics: Arc::clone(&metrics),
            }));
            metrics.set_wal_backlog_bytes(wal.stats().since_checkpoint_bytes);
        }
        metrics.set_role_follower(role == Role::Follower);
        let inner = Arc::new(Inner {
            name: name.to_string(),
            config: Mutex::new(config),
            write: Mutex::new(state),
            published: RwLock::new(None),
            published_discovery: RwLock::new(None),
            name_cache: Default::default(),
            queue: Mutex::new(QueueState::default()),
            queue_cv: Condvar::new(),
            publish_seq: AtomicU64::new(publish_seed),
            published_relation_epoch: AtomicU64::new(0),
            tuples_hint: AtomicU64::new(tuples),
            metrics,
            journal: Arc::new(EventJournal::new(JOURNAL_CAPACITY)),
            durability: Mutex::new(wal),
            ckpt_lock: Mutex::new(()),
            ckpt_helper: Mutex::new(None),
            auto_checkpoint: Mutex::new(auto_checkpoint),
            follower: AtomicBool::new(role == Role::Follower),
            replication: Mutex::new(None),
            encode_stall: Mutex::new(encode_stall),
        });
        {
            // Recovered mined state is served immediately — the relation
            // epoch a reader sees after restart is the pre-crash one.
            let w = inner.write.lock().expect("fresh write lock");
            if w.miner.is_some() {
                publish(&inner, &w);
            }
        }
        let worker_inner = Arc::clone(&inner);
        let worker = std::thread::Builder::new()
            .name(format!("annod-writer-{name}"))
            .spawn(move || writer_loop(&worker_inner))
            .map_err(|e| ServiceError::Io(format!("cannot spawn writer thread: {e}")))?;
        Ok(Dataset {
            inner,
            worker: Mutex::new(Some(worker)),
        })
    }

    /// The dataset's name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// The mining configuration this dataset currently runs under. For a
    /// follower this tracks the leader: replayed `mine` records and
    /// restored checkpoints carry the leader's configuration with them.
    pub fn config(&self) -> IncrementalConfig {
        *self.inner.config.lock().expect("config lock")
    }

    /// Queue one mutation. Returns the op's sequence number (pass it to
    /// nothing — [`Dataset::flush`] waits for everything queued so far).
    ///
    /// Applies backpressure: past the queue's high-water mark of pending
    /// individual updates, this blocks until the writer drains, so a fast
    /// client cannot grow the daemon's memory without bound. An op larger
    /// than the whole cap is still accepted once the queue is empty.
    pub fn enqueue(&self, op: UpdateOp) -> Result<u64, ServiceError> {
        self.check_writable()?;
        let mut q = self.inner.queue.lock().expect("queue lock");
        loop {
            // A writer panic sets both flags and notifies, so a blocked
            // client fails fast instead of hanging on the condvar.
            if q.shutdown {
                return Err(ServiceError::ShutDown(self.inner.name.clone()));
            }
            if q.pending.is_empty() || q.pending_updates + op.len() <= q.cap_updates {
                break;
            }
            q = self.inner.queue_cv.wait(q).expect("queue lock");
        }
        self.inner.metrics.record_enqueue(op.len() as u64);
        q.pending_updates += op.len();
        self.inner.metrics.set_queue_depth(q.pending_updates as u64);
        q.pending.push(op);
        q.enqueued += 1;
        let seq = q.enqueued;
        self.inner.queue_cv.notify_all();
        Ok(seq)
    }

    /// Queue one mutation without ever blocking: the admission path for
    /// the sharded front end, whose event loops must not park on a
    /// tenant's backpressure condvar. When the bounded queue (or the
    /// grouped-sync unacked-drain window) is full the op is refused with
    /// the typed [`ServiceError::Overloaded`] soft error — nothing is
    /// enqueued, and the shed is counted in `anno_admission_shed_ops`.
    /// Like [`Dataset::enqueue`], an op larger than the whole cap is
    /// still admitted once the queue is empty.
    pub fn try_enqueue(&self, op: UpdateOp) -> Result<u64, ServiceError> {
        self.check_writable()?;
        let mut q = self.inner.queue.lock().expect("queue lock");
        if q.shutdown {
            return Err(ServiceError::ShutDown(self.inner.name.clone()));
        }
        let window_full = self.inner.metrics.unacked_drains() >= MAX_PIPELINED_ACKS as u64;
        if !q.pending.is_empty() && (q.pending_updates + op.len() > q.cap_updates || window_full) {
            self.inner.metrics.record_admission_shed();
            return Err(ServiceError::Overloaded {
                dataset: self.inner.name.clone(),
                pending: q.pending_updates as u64,
                cap: q.cap_updates as u64,
            });
        }
        self.inner.metrics.record_enqueue(op.len() as u64);
        q.pending_updates += op.len();
        self.inner.metrics.set_queue_depth(q.pending_updates as u64);
        q.pending.push(op);
        q.enqueued += 1;
        let seq = q.enqueued;
        self.inner.queue_cv.notify_all();
        Ok(seq)
    }

    /// `true` while [`Dataset::try_enqueue`] would shed a one-update op:
    /// the bounded queue is at its cap or the unacked-drain window is
    /// full. The sharded front end polls this to decide when to suspend
    /// a flooding connection's reads.
    pub fn overloaded(&self) -> bool {
        let q = self.inner.queue.lock().expect("queue lock");
        !q.pending.is_empty()
            && (q.pending_updates >= q.cap_updates
                || self.inner.metrics.unacked_drains() >= MAX_PIPELINED_ACKS as u64)
    }

    /// `true` once the writer has drained back below half the cap (and
    /// the unacked-drain window has room): the hysteresis point at which
    /// a suspended connection's reads are resumed, so a tenant does not
    /// flap between suspended and resumed at the cap boundary.
    pub fn admission_ready(&self) -> bool {
        let q = self.inner.queue.lock().expect("queue lock");
        q.pending_updates <= q.cap_updates / 2
            && self.inner.metrics.unacked_drains() < MAX_PIPELINED_ACKS as u64
    }

    /// The admission cap on pending individual updates.
    pub fn queue_cap(&self) -> usize {
        self.inner.queue.lock().expect("queue lock").cap_updates
    }

    /// Set the admission cap on pending individual updates (min 1).
    /// Shrinking the cap never drops queued work — it only gates new
    /// admissions; blocked [`Dataset::enqueue`] callers re-check on the
    /// next drain.
    pub fn set_queue_cap(&self, cap: usize) {
        let mut q = self.inner.queue.lock().expect("queue lock");
        q.cap_updates = cap.max(1);
    }

    /// The tenant's QoS class.
    pub fn qos_class(&self) -> QosClass {
        self.inner.queue.lock().expect("queue lock").class
    }

    /// Reclassify the tenant (protocol verb `class <ds>
    /// interactive|bulk`); mirrored to the `anno_admission_bulk_class`
    /// gauge so dashboards can slice queue depth by class.
    pub fn set_qos_class(&self, class: QosClass) {
        let mut q = self.inner.queue.lock().expect("queue lock");
        q.class = class;
        self.inner.metrics.set_qos_bulk(class == QosClass::Bulk);
    }

    /// Test hook: while paused the writer leaves pending work queued, so
    /// admission tests can fill the bounded queue deterministically.
    /// Cleared automatically at shutdown so the final drain still runs.
    #[doc(hidden)]
    pub fn pause_writer_for_tests(&self, paused: bool) {
        let mut q = self.inner.queue.lock().expect("queue lock");
        q.paused = paused;
        self.inner.queue_cv.notify_all();
    }

    /// Block until every op enqueued before this call has been applied and
    /// its snapshot published — however long a legitimate pass takes (a
    /// budget-triggered full re-mine can run minutes on large relations;
    /// an arbitrary timeout here would misreport still-queued work as
    /// failed and invite duplicate re-submission). Errs only when the
    /// writer actually died with the work undone.
    pub fn flush(&self) -> Result<(), ServiceError> {
        self.inner.metrics.record_flush();
        let mut q = self.inner.queue.lock().expect("queue lock");
        let target = q.enqueued;
        while q.applied < target {
            if q.writer_dead {
                return Err(ServiceError::ShutDown(self.inner.name.clone()));
            }
            q = self.inner.queue_cv.wait(q).expect("queue lock");
        }
        Ok(())
    }

    /// Role fence: every mutation path calls this first, so a follower
    /// rejects writes with a *typed* error a client can distinguish from
    /// a dead writer ([`ServiceError::ShutDown`]) — a follower is healthy,
    /// just not the leader.
    fn check_writable(&self) -> Result<(), ServiceError> {
        if self.inner.follower.load(Ordering::SeqCst) {
            return Err(ServiceError::ReadOnlyRole(self.inner.name.clone()));
        }
        Ok(())
    }

    /// The write mutex, with poisoning (a writer panic mid-apply) mapped
    /// to [`ServiceError::ShutDown`] instead of propagating the panic.
    fn write_lock(&self) -> Result<std::sync::MutexGuard<'_, WriteState>, ServiceError> {
        self.inner
            .write
            .lock()
            .map_err(|_| ServiceError::ShutDown(self.inner.name.clone()))
    }

    /// Drain the queue, then mine the relation from scratch and publish
    /// the first snapshot (or re-mine and re-publish if already mined).
    /// On a durable dataset the mine event is logged first, so recovery
    /// re-derives the rule set at the same point in the op stream even
    /// before any checkpoint exists.
    ///
    /// An unloggable mine **disables the dataset** — the same fencing the
    /// writer applies to an unloggable drain. Serving a freshly mined
    /// snapshot the log never heard of would let served state diverge
    /// from what a restart recovers; one failure policy covers both
    /// mutation paths.
    pub fn mine(&self) -> Result<Arc<RuleSnapshot>, ServiceError> {
        self.check_writable()?;
        self.flush()?;
        // A fenced dataset (unloggable drain, mine, or sync — the writer
        // died abnormally) refuses further mines outright instead of
        // re-attempting the log.
        if self.inner.queue.lock().expect("queue lock").writer_dead {
            return Err(ServiceError::ShutDown(self.inner.name.clone()));
        }
        let mut w = self.write_lock()?;
        let config = *self.inner.config.lock().expect("config lock");
        {
            let mut dur = self.inner.durability.lock().expect("wal lock");
            if let Some(wal) = dur.as_mut() {
                let payload = walcodec::encode_mine(&config);
                if let Err(e) = wal.append(&payload) {
                    drop(dur);
                    drop(w);
                    disable(
                        &self.inner,
                        &format!("cannot log a mine event ({e}); dataset disabled"),
                    );
                    return Err(ServiceError::Durability(e.to_string()));
                }
            }
        }
        let miner = IncrementalMiner::mine_initial(&w.relation, config);
        w.miner = Some(miner);
        sync_discovery(&self.inner.metrics, &mut w);
        // anno-lint: allow(panic-path) -- w.miner was assigned Some two lines above; publish only returns None without a miner
        Ok(publish(&self.inner, &w).expect("just mined"))
    }

    /// The latest published snapshot. Never blocks on the write path.
    pub fn snapshot(&self) -> Result<Arc<RuleSnapshot>, ServiceError> {
        self.inner.metrics.record_snapshot_read();
        self.inner
            .published
            .read()
            .map_err(|_| ServiceError::ShutDown(self.inner.name.clone()))?
            .clone()
            .ok_or_else(|| ServiceError::NotMined(self.inner.name.clone()))
    }

    /// The latest snapshot, if one has been published.
    pub fn try_snapshot(&self) -> Option<Arc<RuleSnapshot>> {
        self.inner.metrics.record_snapshot_read();
        self.inner.published.read().ok()?.clone()
    }

    /// The latest published discovery top-k. Published in lock-step with
    /// the rule snapshot (same epoch), so pairing the two verbs reads one
    /// consistent instant. Never blocks on the write path.
    pub fn discovery(&self) -> Result<Arc<DiscoverySnapshot>, ServiceError> {
        self.inner
            .published_discovery
            .read()
            .map_err(|_| ServiceError::ShutDown(self.inner.name.clone()))?
            .clone()
            .ok_or_else(|| ServiceError::NotMined(self.inner.name.clone()))
    }

    /// The latest discovery top-k, if one has been published.
    pub fn try_discovery(&self) -> Option<Arc<DiscoverySnapshot>> {
        self.inner.published_discovery.read().ok()?.clone()
    }

    /// Resolve `name` in namespace `kind` through the per-dataset
    /// lookaside cache, falling back to the published snapshot's
    /// vocabulary HAMT on a miss. Only **positive** results are cached:
    /// interning is append-only, so a hit can never go stale, while an
    /// absent name may be interned by the very next drain.
    pub fn resolve_cached(
        &self,
        vocab: &anno_store::Vocabulary,
        kind: ItemKind,
        name: &str,
    ) -> Option<anno_store::Item> {
        let cache = &self.inner.name_cache[kind as usize];
        if let Some(item) = cache.read().expect("name cache lock").get(name) {
            self.inner.metrics.record_name_cache(true);
            return Some(*item);
        }
        let item = vocab.get(kind, name)?;
        self.inner.metrics.record_name_cache(false);
        cache
            .write()
            .expect("name cache lock")
            .insert(name.to_string(), item);
        Some(item)
    }

    /// `true` once [`Dataset::mine`] has published a snapshot.
    pub fn is_mined(&self) -> bool {
        self.inner
            .published
            .read()
            .map(|guard| guard.is_some())
            .unwrap_or(false)
    }

    /// The paper's validation check: drain the queue, then compare the
    /// maintained rules against a from-scratch mine of the live relation
    /// — and the incrementally maintained discovery index against a full
    /// rescan of the miner's itemset table.
    pub fn verify(&self) -> Result<bool, ServiceError> {
        self.flush()?;
        let w = self.write_lock()?;
        match &w.miner {
            Some(miner) => Ok(miner.verify_against_remine(&w.relation)
                && w.discovery.verify_against_rescan(miner.table())),
            None => Err(ServiceError::NotMined(self.inner.name.clone())),
        }
    }

    /// `true` iff this dataset logs its drains to a write-ahead log.
    /// Followers are not durable in this sense: they replay somebody
    /// else's log and own none.
    pub fn is_durable(&self) -> bool {
        self.inner.durability.lock().expect("wal lock").is_some()
    }

    /// Write-ahead-log counters, if the dataset is durable.
    pub fn wal_stats(&self) -> Option<WalStats> {
        self.inner
            .durability
            .lock()
            .expect("wal lock")
            .as_ref()
            .map(Wal::stats)
    }

    /// The automatic checkpoint policy this dataset runs under (disabled
    /// for memory-only datasets and durable opens without one).
    pub fn auto_checkpoint_policy(&self) -> CheckpointPolicy {
        *self.inner.auto_checkpoint.lock().expect("policy lock")
    }

    /// Short label of the WAL's sync policy (`per_append`, `none`,
    /// `grouped`), if the dataset is durable.
    pub fn sync_policy_label(&self) -> Option<&'static str> {
        self.inner
            .durability
            .lock()
            .expect("wal lock")
            .as_ref()
            .map(|wal| wal.options().sync.label())
    }

    /// Counters of the shared group committer, when this dataset's log
    /// syncs through one. Process-wide numbers: every tenant sharing the
    /// committer contributes to them — that sharing is the point.
    pub fn group_commit_stats(&self) -> Option<GroupCommitStats> {
        self.inner
            .durability
            .lock()
            .expect("wal lock")
            .as_ref()
            .and_then(|wal| wal.options().sync.committer().map(|c| c.stats()))
    }

    /// Take a durability checkpoint: drain the queue, persist the
    /// relation snapshot and miner checkpoint at the current log
    /// position, and truncate the sealed log segments behind it. Returns
    /// the checkpoint's log position and payload size in bytes.
    ///
    /// After this, recovery restores the checkpoint and replays only
    /// drains logged after it — recovery time (and disk footprint) is
    /// once again proportional to the post-checkpoint delta, not the
    /// dataset's full history.
    ///
    /// The write mutex is held only to *capture* the state (a persistent
    /// relation clone plus a miner clone — pointer-and-rule-table cost,
    /// never O(|D|)) and pin the log position; the O(|D|) encode and the
    /// payload write happen outside it, so a checkpoint of a large
    /// dataset stalls neither the writer nor other clients. (This is
    /// what makes the automatic policy safe to fire on the write path.)
    pub fn checkpoint(&self) -> Result<(LogPosition, usize), ServiceError> {
        self.check_writable()?;
        if self.inner.durability.lock().expect("wal lock").is_none() {
            return Err(ServiceError::Durability(format!(
                "dataset {:?} has no durability directory; reopen it with one",
                self.inner.name
            )));
        }
        self.flush()?;
        let guard = self.inner.ckpt_lock.lock().expect("checkpoint lock");
        // Join any in-flight automatic helper under the checkpoint lock:
        // its captured position is older than ours, and letting its
        // commit land *after* ours would re-point recovery at a position
        // whose follow-up segments we are about to compact.
        if let Some(h) = self.inner.ckpt_helper.lock().expect("helper lock").take() {
            let _ = h.join();
        }
        let (position, bytes) = run_checkpoint(&self.inner, &guard)?;
        self.inner.journal.record(
            "checkpoint",
            format!("position={position} payload_bytes={bytes}"),
        );
        Ok((position, bytes))
    }

    /// Wait for any in-flight automatic checkpoint commit to land.
    ///
    /// Auto-checkpoint encodes run on a helper thread, so counters and
    /// durable artifacts trail the drain that tripped the policy. Tests
    /// and operational tooling call this to observe a settled state
    /// without forcing an extra checkpoint of their own.
    pub fn quiesce_maintenance(&self) {
        let _guard = self.inner.ckpt_lock.lock().expect("checkpoint lock");
        if let Some(h) = self.inner.ckpt_helper.lock().expect("helper lock").take() {
            let _ = h.join();
        }
    }

    /// Point-in-time operation counters.
    pub fn metrics(&self) -> MetricsReport {
        self.inner.metrics.report()
    }

    /// Everything the exposition endpoint needs, frozen at one instant:
    /// counters, histogram snapshots, and gauge levels.
    pub fn observability(&self) -> DatasetObs {
        self.inner.metrics.observe()
    }

    /// The most recent `n` maintenance events, oldest first.
    pub fn events(&self, n: usize) -> Vec<Event> {
        self.inner.journal.recent(n)
    }

    /// Maintenance events ever recorded, including evicted ones.
    pub fn events_total(&self) -> u64 {
        self.inner.journal.total()
    }

    /// Live counters, for in-crate layers that record query latencies.
    pub(crate) fn raw_metrics(&self) -> &Metrics {
        self.inner.metrics.as_ref()
    }

    /// Live tuple count as of the last completed write pass. Lock-free —
    /// does not wait on an in-flight drain (prefer
    /// [`RuleSnapshot::db_size`] once mined).
    pub fn live_tuples(&self) -> usize {
        self.inner.tuples_hint.load(Ordering::Relaxed) as usize
    }

    /// Number of coalesced drains the writer has taken off the queue — the
    /// `M` the publish-cost model amortizes over (stress suites pin
    /// readers across a minimum drain count with this).
    pub fn drains(&self) -> u64 {
        self.inner.queue.lock().expect("queue lock").drains
    }

    /// Which side of replication this dataset is on right now.
    pub fn role(&self) -> Role {
        if self.inner.follower.load(Ordering::SeqCst) {
            Role::Follower
        } else {
            Role::Leader
        }
    }

    /// The follower's tail-loop progress, when one is attached. `None`
    /// for leaders (including freshly promoted ones).
    pub fn replication_status(&self) -> Option<ReplicationStatus> {
        let repl = self.inner.replication.lock().expect("replication lock");
        repl.as_ref()
            .map(|h| h.ctl.state.lock().expect("follower lock").status())
    }

    /// Attach a **follower** replica to a leader's log directory `dir`:
    /// spawn a tail thread that polls the directory every `poll`, replays
    /// shipped checkpoints and records through the same apply path
    /// recovery uses, and publishes read-only snapshots as the leader's
    /// drains arrive. The directory is never locked or written — the
    /// leader may be live in another process (or another thread) the
    /// whole time.
    ///
    /// Every mutation verb on the returned dataset fails with
    /// [`ServiceError::ReadOnlyRole`] until [`Dataset::promote`] turns it
    /// into the leader. `config` only seeds the pre-mine phase; replayed
    /// `mine` records and checkpoints carry the leader's configuration.
    pub fn follow(
        name: &str,
        config: IncrementalConfig,
        dir: &Path,
        poll: Duration,
    ) -> Result<Dataset, ServiceError> {
        let state = WriteState {
            relation: AnnotatedRelation::new(name),
            miner: None,
            discovery: DiscoveryIndex::new(),
        };
        let ds = Dataset::boot(
            name,
            config,
            state,
            None,
            0,
            CheckpointPolicy::default(),
            None,
            Role::Follower,
        )?;
        let ctl = Arc::new(FollowerCtl::default());
        let worker_inner = Arc::clone(&ds.inner);
        let worker_ctl = Arc::clone(&ctl);
        let tail_dir = dir.to_path_buf();
        let thread = std::thread::Builder::new()
            .name(format!("annod-follower-{name}"))
            .spawn(move || follower_loop(&worker_inner, &worker_ctl, &tail_dir, poll))
            .map_err(|e| ServiceError::Io(format!("cannot spawn follower thread: {e}")))?;
        *ds.inner.replication.lock().expect("replication lock") = Some(FollowerHandle {
            ctl,
            dir: dir.to_path_buf(),
            thread: Some(thread),
        });
        ds.inner
            .journal
            .record("attach", format!("dir={}", dir.display()));
        Ok(ds)
    }

    /// Force a tail poll now and wait for it to finish, returning the
    /// post-poll progress — `catchup` for clients that just wrote to the
    /// leader and want the follower to reflect it. Errs if this dataset
    /// is not a follower or its tail loop has failed.
    pub fn catchup_now(&self) -> Result<ReplicationStatus, ServiceError> {
        let ctl = {
            let repl = self.inner.replication.lock().expect("replication lock");
            match repl.as_ref() {
                Some(h) => Arc::clone(&h.ctl),
                None => {
                    return Err(ServiceError::Durability(format!(
                        "dataset {:?} is not a follower; nothing to catch up",
                        self.inner.name
                    )))
                }
            }
        };
        let mut st = ctl.state.lock().expect("follower lock");
        // Wait for a poll that *starts* after this request: an in-flight
        // poll read the directory before the caller's writes landed.
        let target = st.polls_started + 1;
        st.poll_requests = st.poll_requests.max(target);
        ctl.cv.notify_all();
        while st.polls_done < target {
            if st.stop {
                break;
            }
            if let Some(why) = &st.failed {
                return Err(ServiceError::Durability(format!(
                    "dataset {:?} follower failed: {why}",
                    self.inner.name
                )));
            }
            st = ctl.cv.wait(st).expect("follower lock");
        }
        if let Some(why) = &st.failed {
            return Err(ServiceError::Durability(format!(
                "dataset {:?} follower failed: {why}",
                self.inner.name
            )));
        }
        Ok(st.status())
    }

    /// Promote this follower to leader with default [`DurabilityOptions`].
    /// See [`Dataset::promote_with`].
    pub fn promote(&self) -> Result<(), ServiceError> {
        self.promote_with(DurabilityOptions::default())
    }

    /// Promote a follower to **leader**: acquire the log directory's
    /// `wal.lock` (the fencing point — a still-live leader refuses the
    /// takeover with a lock error and the follower keeps tailing; a dead
    /// leader's stale lock is reclaimed), stop the tail loop, re-run full
    /// recovery over the directory (checkpoint + every intact record —
    /// this resolves what a tailing follower never can: whether a torn
    /// tip was a mid-write or real damage), install the recovered state
    /// and the log, and start accepting writes.
    ///
    /// Publish epochs stay monotone across the role flip: the recovered
    /// seed is taken with `fetch_max`, never stored blindly.
    pub fn promote_with(&self, options: DurabilityOptions) -> Result<(), ServiceError> {
        if !self.inner.follower.load(Ordering::SeqCst) {
            return Err(ServiceError::Durability(format!(
                "dataset {:?} is already the leader",
                self.inner.name
            )));
        }
        let dir = {
            let repl = self.inner.replication.lock().expect("replication lock");
            match repl.as_ref() {
                Some(h) => h.dir.clone(),
                None => {
                    return Err(ServiceError::Durability(format!(
                        "dataset {:?} has no replication attachment",
                        self.inner.name
                    )))
                }
            }
        };
        // Take the lock FIRST. Failing here (live leader) leaves the
        // follower untouched and still tailing.
        let (mut wal, recovery) = Wal::open(&dir, options.wal)
            .map_err(|e| ServiceError::Durability(format!("cannot take over the log: {e}")))?;
        // Now the takeover is committed: stop the tail loop.
        let handle = self
            .inner
            .replication
            .lock()
            .expect("replication lock")
            .take();
        if let Some(mut h) = handle {
            h.ctl.stop();
            if let Some(t) = h.thread.take() {
                let _ = t.join();
            }
        }
        let config = *self.inner.config.lock().expect("config lock");
        let rec = recover_write_state(&self.inner.name, config, recovery)?;
        wal.set_observer(Arc::new(DatasetWalObserver {
            metrics: Arc::clone(&self.inner.metrics),
        }));
        self.inner
            .metrics
            .set_wal_backlog_bytes(wal.stats().since_checkpoint_bytes);
        {
            let mut w = self.write_lock()?;
            *self.inner.durability.lock().expect("wal lock") = Some(wal);
            *w = rec.state;
            self.inner
                .tuples_hint
                .store(w.relation.len() as u64, Ordering::Relaxed);
            self.inner.metrics.set_store_shape(
                w.relation.segments().len() as u64,
                w.relation.vocab_chunk_count() as u64,
            );
            // Monotone across the role flip: the follower's own publishes
            // may already be past the recovered seed.
            self.inner
                .publish_seq
                .fetch_max(rec.publish_seed, Ordering::SeqCst);
            *self.inner.config.lock().expect("config lock") = rec.config;
            *self.inner.auto_checkpoint.lock().expect("policy lock") = options.auto_checkpoint;
            *self.inner.encode_stall.lock().expect("stall lock") = options.encode_stall_for_tests;
            self.inner.follower.store(false, Ordering::SeqCst);
            self.inner.metrics.set_role_follower(false);
            if w.miner.is_some() {
                publish(&self.inner, &w);
            }
        }
        self.inner.journal.record(
            "promote",
            format!(
                "checkpoint={} replayed_records={}",
                rec.restored_checkpoint, rec.replayed_records
            ),
        );
        if let Some(damage) = rec.damage {
            self.inner.journal.record("truncated_tail", damage);
        }
        Ok(())
    }

    /// Stop the writer thread, draining anything already queued. Further
    /// enqueues fail with [`ServiceError::ShutDown`]. Idempotent.
    pub fn shutdown(&self) {
        {
            let mut q = self.inner.queue.lock().expect("queue lock");
            q.shutdown = true;
            // A paused writer (test hook) must still run its final drain.
            q.paused = false;
            self.inner.queue_cv.notify_all();
        }
        if let Some(mut h) = self
            .inner
            .replication
            .lock()
            .expect("replication lock")
            .take()
        {
            h.ctl.stop();
            if let Some(t) = h.thread.take() {
                let _ = t.join();
            }
        }
        if let Some(handle) = self.worker.lock().expect("worker lock").take() {
            let _ = handle.join();
        }
        // An in-flight auto-checkpoint commit finishes before shutdown
        // returns, so a reopen of the directory sees it.
        if let Some(h) = self.inner.ckpt_helper.lock().expect("helper lock").take() {
            let _ = h.join();
        }
    }
}

impl Drop for Dataset {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dataset")
            .field("name", &self.inner.name)
            .field("mined", &self.is_mined())
            .finish()
    }
}

/// Build and swap in a fresh snapshot; no-op (returning `None`) pre-mine.
/// The snapshot's relation is a persistent clone sharing every segment
/// with `w.relation` — publish cost is O(#segments), not O(|D|).
fn publish(inner: &Inner, w: &WriteState) -> Option<Arc<RuleSnapshot>> {
    let miner = w.miner.as_ref()?;
    let epoch = inner.publish_seq.fetch_add(1, Ordering::SeqCst) + 1;
    let snap = Arc::new(RuleSnapshot::build(&inner.name, epoch, &w.relation, miner));
    // Drain-boundary epoch contract: published relation epochs only move
    // forward. A regression would mean a reader could observe time running
    // backwards across two snapshot reads.
    let prev = inner
        .published_relation_epoch
        .swap(snap.relation_epoch(), Ordering::SeqCst);
    assert!(
        snap.relation_epoch() >= prev,
        "published relation epoch regressed: {prev} -> {}",
        snap.relation_epoch()
    );
    *inner.published.write().expect("published lock") = Some(Arc::clone(&snap));
    // The discovery top-k rides the same epoch: a client pairing `rules`
    // with `discover` can check the epochs match and know both views are
    // from the same drain boundary.
    let discovery = Arc::new(w.discovery.snapshot(
        epoch,
        w.relation.len() as u64,
        DISCOVERY_TOPK_CAP,
        w.relation.vocab(),
    ));
    inner.metrics.set_discovery_shape(
        w.discovery.pairs_tracked() as u64,
        discovery.cross.len() as u64,
        discovery.within.len() as u64,
    );
    *inner
        .published_discovery
        .write()
        .expect("published discovery lock") = Some(discovery);
    inner.metrics.record_publish();
    Some(snap)
}

/// Drain the miner's touch log into the discovery index — the step that
/// keeps discovery *incremental*: only pairs involving items a drain
/// touched are re-scored, everything else keeps its rank (the n-invariant
/// rank key makes that sound; see `anno-discover`). Called on every path
/// that runs maintenance: live drains, `mine`, recovery replay, and
/// follower record application. No-op pre-mine or when nothing moved.
fn sync_discovery(metrics: &Metrics, w: &mut WriteState) {
    let WriteState {
        miner, discovery, ..
    } = w;
    let Some(miner) = miner.as_mut() else { return };
    let touches = miner.take_touches();
    if touches.is_empty() {
        return;
    }
    let ((), nanos) = timed(|| discovery.refresh(miner.table(), &touches));
    metrics.record_discover_update(nanos);
}

/// Mark the ops up to `drained_to` as applied-and-durable, releasing
/// their `flush` barriers.
fn ack(inner: &Inner, drained_to: u64) {
    let mut q = inner.queue.lock().expect("queue lock");
    q.applied = q.applied.max(drained_to);
    inner.queue_cv.notify_all();
}

/// Fence the dataset: reject new work, fail waiting clients fast. The
/// single failure policy for every unloggable mutation (drain, mine, or
/// a grouped sync that never became durable) and for writer panics.
fn disable(inner: &Inner, why: &str) {
    eprintln!("annod: writer for dataset {:?}: {why}", inner.name);
    inner.journal.record("fenced", why.to_string());
    let mut q = inner.queue.lock().expect("queue lock");
    q.shutdown = true;
    q.writer_dead = true;
    inner.queue_cv.notify_all();
}

/// Block on the oldest outstanding group-commit ticket and release its
/// flush barrier. Tickets resolve in append order, so waiting on the
/// front covers everything behind it.
fn retire_oldest(inner: &Inner, inflight: &mut VecDeque<(u64, SyncTicket)>) -> Result<(), String> {
    let Some((drained_to, ticket)) = inflight.pop_front() else {
        return Ok(());
    };
    inner.metrics.set_unacked_drains(inflight.len() as u64);
    ticket
        .wait()
        .map_err(|e| format!("grouped sync failed ({e})"))?;
    ack(inner, drained_to);
    Ok(())
}

/// Retire every ticket whose sync window already closed, oldest first,
/// without blocking — the writer calls this between drains so pipelined
/// acks flow out while fresh work keeps flowing in.
fn retire_ready(inner: &Inner, inflight: &mut VecDeque<(u64, SyncTicket)>) -> Result<(), String> {
    while let Some((drained_to, ticket)) = inflight.front() {
        match ticket.try_ready() {
            None => break,
            Some(Ok(())) => {
                let drained_to = *drained_to;
                inflight.pop_front();
                inner.metrics.set_unacked_drains(inflight.len() as u64);
                ack(inner, drained_to);
            }
            Some(Err(e)) => return Err(format!("grouped sync failed ({e})")),
        }
    }
    Ok(())
}

/// How long the writer parks between ticket polls when it has unacked
/// grouped drains but no fresh work. Bounds the extra flush latency a
/// quiet moment adds on top of the committer's sync window.
const ACK_POLL: std::time::Duration = std::time::Duration::from_micros(200);

/// Everything recovery derives from a log directory, shared by
/// [`Dataset::open_with`] and [`Dataset::promote_with`].
struct Recovered {
    state: WriteState,
    config: IncrementalConfig,
    publish_seed: u64,
    replayed_records: usize,
    restored_checkpoint: bool,
    damage: Option<String>,
}

/// Restore a discovery index from its checkpointed text, or — for
/// payloads written before discovery existed — rebuild it from the
/// restored miner's table (one rescan, paid only on that upgrade path).
fn restore_discovery<E>(
    text: Option<&str>,
    miner: Option<&IncrementalMiner>,
    err: impl Fn(&str, String) -> E,
) -> Result<DiscoveryIndex, E> {
    match text {
        Some(text) => {
            DiscoveryIndex::decode_from_string(text).map_err(|m| err("discovery checkpoint", m))
        }
        None => Ok(miner
            .map(|m| DiscoveryIndex::rebuilt_from(m.table()))
            .unwrap_or_default()),
    }
}

/// Rebuild write state from a WAL recovery: restore the checkpoint
/// (validated), replay the tail through [`apply_op`], and derive the
/// publish-counter seed. See [`Dataset::open_with`] for the contract.
fn recover_write_state(
    name: &str,
    config: IncrementalConfig,
    recovery: anno_wal::Recovery,
) -> Result<Recovered, ServiceError> {
    let dur = |stage: &str, msg: String| {
        ServiceError::Durability(format!("dataset {name:?} {stage}: {msg}"))
    };
    // Publish epochs must never regress across a restart. Seed the
    // publish counter past anything the dead process can have handed
    // out: the checkpoint stores the counter at capture time, and
    // every logged record after it published at most one snapshot.
    // Under grouped sync a pipelined drain can be published *before*
    // its record is durable, so a power loss (page cache gone, unlike
    // the process-kill case where the OS still has the bytes) may
    // recover fewer records than were published — the writer caps
    // that overhang at its ack pipeline depth plus the one drain in
    // flight, so that slack is added unconditionally. (The relation's
    // mutation epoch is a floor for checkpoints from before the
    // counter was persisted: publishes happen only at epoch-advancing
    // drain boundaries, so the count never exceeds the epoch by more
    // than the replayed mine records — which the tail term covers.)
    let mut publish_seed = recovery.tail.len() as u64 + MAX_PIPELINED_ACKS as u64 + 1;
    let replayed_records = recovery.tail.len();
    let restored_checkpoint = recovery.checkpoint.is_some();
    let mut state = match recovery.checkpoint {
        Some(ck) => {
            let parts = walcodec::decode_checkpoint(&ck.payload)
                .map_err(|m| dur("checkpoint payload", m))?;
            publish_seed += parts.publish_seq.unwrap_or(0);
            let relation =
                snapshot_from_string(&parts.snapshot).map_err(|m| dur("checkpoint snapshot", m))?;
            let miner = parts
                .miner
                .as_deref()
                .map(IncrementalMiner::checkpoint_from_string)
                .transpose()
                .map_err(|m| dur("miner checkpoint", m))?;
            if let Some(m) = &miner {
                // The two halves of the checkpoint must be from the
                // same instant; continuing maintenance from a
                // mismatched pair would silently void exactness.
                m.validate_against(&relation)
                    .map_err(|m| dur("checkpoint validation", m))?;
            }
            let discovery =
                restore_discovery(parts.discovery.as_deref(), miner.as_ref(), |stage, m| {
                    dur(stage, m)
                })?;
            WriteState {
                relation,
                miner,
                discovery,
            }
        }
        None => WriteState {
            relation: AnnotatedRelation::new(name),
            miner: None,
            discovery: DiscoveryIndex::new(),
        },
    };
    for payload in &recovery.tail {
        let record = walcodec::decode(payload).map_err(|m| dur("log record", m))?;
        // The live writer contains apply panics with catch_unwind
        // ("an unforeseen panic in maintenance code must disable the
        // dataset loudly"); replay needs the same containment, or a
        // drain that was logged and then panicked would turn every
        // future open into a crash loop instead of a clean error.
        // The log is left untouched: the record may replay fine once
        // the offending code is fixed.
        let replayed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match record {
            WalRecord::Drain(ops) => {
                for op in ops {
                    apply_op(&mut state, op);
                }
            }
            WalRecord::Mine(mine_config) => {
                state.miner = Some(IncrementalMiner::mine_initial(&state.relation, mine_config));
            }
        }));
        if replayed.is_err() {
            return Err(dur(
                "log replay",
                "a logged record panicked during re-application; \
                 the log is preserved for inspection"
                    .to_string(),
            ));
        }
    }
    if let Some(m) = &state.miner {
        // Cheap resume screen over the fully replayed state; the
        // exhaustive check stays on demand (`Dataset::verify`).
        m.validate_against(&state.relation)
            .map_err(|m| dur("post-replay validation", m))?;
    }
    {
        // The replay loop accumulated one merged touch log across every
        // replayed record; fold it into the discovery index once. (A
        // replayed `mine` marks the log all-dirty, so the rebuild case is
        // covered too.)
        let WriteState {
            miner, discovery, ..
        } = &mut state;
        if let Some(m) = miner.as_mut() {
            let touches = m.take_touches();
            if !touches.is_empty() {
                discovery.refresh(m.table(), &touches);
            }
        }
    }
    let damage = recovery.damaged.as_ref().map(|damage| {
        eprintln!("annod: dataset {name:?}: {damage}; recovered to the last intact record");
        damage.to_string()
    });
    // A restored miner's configuration wins over the caller's: the
    // maintained table is only exact under the thresholds it was
    // built with.
    let config = state.miner.as_ref().map_or(config, |m| m.config());
    // Pre-publish-sequence checkpoints: the relation epoch dominates
    // the dead process's publish count (see above), so take the max.
    let publish_seed = publish_seed.max(state.relation.epoch());
    Ok(Recovered {
        state,
        config,
        publish_seed,
        replayed_records,
        restored_checkpoint,
        damage,
    })
}

/// How a follower poll went wrong. Transient faults (I/O against a
/// directory mid-change) are retried at the next poll; fatal faults
/// (undecodable or unappliable shipped state) stop the tail loop — the
/// follower keeps serving its last good prefix, and `catchup` reports
/// the failure.
enum FollowerFault {
    Transient(String),
    Fatal(String),
}

/// Refresh the lock-free read hints after the write state changed under
/// the write mutex.
fn refresh_shape(inner: &Inner, w: &WriteState) {
    inner
        .tuples_hint
        .store(w.relation.len() as u64, Ordering::Relaxed);
    inner.metrics.set_store_shape(
        w.relation.segments().len() as u64,
        w.relation.vocab_chunk_count() as u64,
    );
}

/// One tail poll: pull whatever the leader's directory has past the
/// cursor and apply it. Returns `(leader_seq, bytes_behind)`.
///
/// Publishes are gated to **record boundaries whose apply changed the
/// relation epoch** (or installed a miner), exactly like the live
/// writer's drain boundaries — so every snapshot a follower ever serves
/// equals some drain-prefix of the leader's history, never a partial
/// batch.
fn follower_poll(inner: &Inner, cursor: &mut TailCursor) -> Result<(u64, u64), FollowerFault> {
    let polled = match cursor.poll() {
        Ok(p) => p,
        Err(WalError::Io(e)) => return Err(FollowerFault::Transient(e.to_string())),
        Err(e) => return Err(FollowerFault::Fatal(e.to_string())),
    };
    let fatal = |stage: &str, msg: String| FollowerFault::Fatal(format!("{stage}: {msg}"));
    if let Some(ck) = polled.restart {
        // The cursor restarted from a shipped checkpoint (compaction
        // passed us, or first contact with a checkpointed log): replace
        // the whole write state, exactly as recovery would.
        let parts =
            walcodec::decode_checkpoint(&ck.payload).map_err(|m| fatal("checkpoint payload", m))?;
        let relation =
            snapshot_from_string(&parts.snapshot).map_err(|m| fatal("checkpoint snapshot", m))?;
        let miner = parts
            .miner
            .as_deref()
            .map(IncrementalMiner::checkpoint_from_string)
            .transpose()
            .map_err(|m| fatal("miner checkpoint", m))?;
        if let Some(m) = &miner {
            m.validate_against(&relation)
                .map_err(|m| fatal("checkpoint validation", m))?;
        }
        let discovery = restore_discovery(parts.discovery.as_deref(), miner.as_ref(), fatal)?;
        let config = miner.as_ref().map(|m| m.config());
        let ckpt_seq = parts.publish_seq;
        let mut w = inner.write.lock().expect("write lock");
        *w = WriteState {
            relation,
            miner,
            discovery,
        };
        if let Some(config) = config {
            *inner.config.lock().expect("config lock") = config;
        }
        // Keep handed-out snapshot epochs monotone past the leader's
        // checkpointed publish counter.
        inner
            .publish_seq
            .fetch_max(ckpt_seq.unwrap_or(0), Ordering::SeqCst);
        refresh_shape(inner, &w);
        if w.miner.is_some() {
            publish(inner, &w);
        }
        inner
            .journal
            .record("follower_restart", format!("position={}", ck.position));
    }
    for payload in &polled.records {
        let record = walcodec::decode(payload).map_err(|m| fatal("log record", m))?;
        let mut w = inner.write.lock().expect("write lock");
        let mined = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match record {
            WalRecord::Drain(ops) => {
                for op in ops {
                    apply_op(&mut w, op);
                }
                false
            }
            WalRecord::Mine(mine_config) => {
                w.miner = Some(IncrementalMiner::mine_initial(&w.relation, mine_config));
                *inner.config.lock().expect("config lock") = mine_config;
                true
            }
        }))
        .map_err(|_| {
            fatal(
                "record apply",
                "a shipped record panicked during application".to_string(),
            )
        })?;
        sync_discovery(&inner.metrics, &mut w);
        // Same republish screen as the live writer: only at record
        // (= drain) boundaries, only when the state actually moved.
        let stale = mined
            || match inner.published.read().expect("published lock").as_ref() {
                Some(snap) => snap.relation_epoch() != w.relation.epoch(),
                None => w.miner.is_some(),
            };
        refresh_shape(inner, &w);
        if stale {
            publish(inner, &w);
        }
    }
    Ok((polled.leader_position.segment, polled.bytes_behind))
}

/// The follower's tail thread: poll the leader's directory on a timer
/// (or sooner, when `catchup` asks), apply what arrived, and publish the
/// progress numbers.
fn follower_loop(inner: &Arc<Inner>, ctl: &FollowerCtl, dir: &Path, poll: Duration) {
    let mut cursor = TailCursor::new(dir);
    loop {
        {
            let mut st = ctl.state.lock().expect("follower lock");
            if st.stop {
                return;
            }
            st.polls_started += 1;
        }
        let outcome = follower_poll(inner, &mut cursor);
        {
            let mut st = ctl.state.lock().expect("follower lock");
            st.polls_done += 1;
            st.applied_seq = cursor.position().segment;
            st.records_applied = cursor.records_read();
            st.restarts = cursor.restarts();
            match outcome {
                Ok((leader_seq, bytes_behind)) => {
                    st.leader_seq = leader_seq;
                    st.bytes_behind = bytes_behind;
                    inner.metrics.set_replication_lag(
                        st.applied_seq,
                        st.leader_seq,
                        st.bytes_behind,
                        st.records_applied,
                        st.restarts,
                    );
                }
                Err(FollowerFault::Transient(msg)) => {
                    // Directory mid-change (leader rolling a segment,
                    // compaction deleting behind us): next poll retries.
                    inner.journal.record("follower_retry", msg);
                }
                Err(FollowerFault::Fatal(msg)) => {
                    eprintln!(
                        "annod: follower for dataset {:?}: {msg}; tailing stopped \
                         (last good prefix still served)",
                        inner.name
                    );
                    inner.journal.record("follower_failed", msg.clone());
                    st.failed = Some(msg);
                    ctl.cv.notify_all();
                    return;
                }
            }
            ctl.cv.notify_all();
            // Park until the next poll is due — or a catchup wants one
            // sooner.
            let deadline = Instant::now() + poll;
            loop {
                if st.stop {
                    return;
                }
                if st.poll_requests > st.polls_done {
                    break;
                }
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, _) = ctl
                    .cv
                    .wait_timeout(st, deadline - now)
                    .expect("follower lock");
                st = guard;
            }
        }
    }
}

fn writer_loop(inner: &Arc<Inner>) {
    // Drains whose effects are applied and published but whose group-
    // commit sync window has not yet closed, oldest first. Empty unless
    // the WAL runs `SyncPolicy::Grouped`.
    let mut inflight: VecDeque<(u64, SyncTicket)> = VecDeque::new();
    loop {
        let taken = loop {
            // Never park on an open sync window while work could arrive:
            // drain the acks that are already resolved, take fresh work
            // if there is any, and otherwise nap briefly and re-poll.
            if let Err(msg) = retire_ready(inner, &mut inflight) {
                disable(inner, &format!("{msg}; dataset disabled"));
                return;
            }
            let shutdown_draining = {
                let mut q = inner.queue.lock().expect("queue lock");
                if !q.pending.is_empty() && !q.paused {
                    q.pending_updates = 0;
                    inner.metrics.set_queue_depth(0);
                    q.drains += 1;
                    // Wake enqueuers blocked on backpressure now that the
                    // queue is empty again; they need not wait for the
                    // apply below.
                    inner.queue_cv.notify_all();
                    break Some((std::mem::take(&mut q.pending), q.enqueued));
                }
                if q.shutdown {
                    if inflight.is_empty() {
                        break None;
                    }
                    true
                } else if inflight.is_empty() {
                    let _unused = inner.queue_cv.wait(q).expect("queue lock");
                    false
                } else {
                    let _unused = inner
                        .queue_cv
                        .wait_timeout(q, ACK_POLL)
                        .expect("queue lock");
                    false
                }
            };
            if shutdown_draining {
                // Last acks at shutdown: nothing else can arrive, so a
                // blocking wait (at most one sync window) is the fastest
                // way out.
                if let Err(msg) = retire_oldest(inner, &mut inflight) {
                    disable(inner, &format!("{msg}; dataset disabled"));
                    return;
                }
            }
        };
        let Some((ops, drained_to)) = taken else {
            return;
        };
        inner
            .metrics
            .record_drain_size(ops.iter().map(|op| op.len() as u64).sum());
        let (mut batches, folded) = coalesce(ops);
        // Canonicalize before the log sees the drain: segment-locality
        // sort plus within-batch dedupe. Coalescing can merge two
        // clients' updates to the same (tuple, annotation) into one
        // batch; only the first can have an effect, and logging the echo
        // would waste log bytes and replay work on every recovery.
        for batch in &mut batches {
            canonicalize_batch(batch);
        }
        // Defense in depth: prefilter screens out every known panic source
        // (mis-kinded items, dead targets), but an unforeseen panic in
        // maintenance code must disable the dataset loudly — clients get
        // `ShutDown` — rather than silently wedge enqueue/flush forever.
        let pass = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            timed(|| -> Result<(u64, Option<SyncTicket>), String> {
                let mut applied = 0u64;
                let mut ticket = None;
                let mut w = inner.write.lock().expect("write lock");
                // If no batch can change the current relation, the whole
                // drain is a no-op — each batch leaves the state unchanged,
                // so the screen holds inductively across the batch
                // sequence — and neither the log nor the apply loop needs
                // to see it. This keeps the WAL invariant "one appended
                // record per *effective* drain".
                let effective = batches.iter().any(|b| op_has_effect(&w.relation, b));
                if effective {
                    let mut dur = inner.durability.lock().expect("wal lock");
                    if let Some(wal) = dur.as_mut() {
                        // Log before apply: the coalesced drain is written
                        // (and, under per-append sync, durable) before any
                        // of its effects can be published, so a crash
                        // between the two replays the drain instead of
                        // losing acknowledged-and-served state. Under
                        // grouped sync the returned ticket gates the
                        // client-visible ack instead: flush barriers
                        // release only once the sync window closes.
                        let payload = walcodec::encode_drain(&batches);
                        ticket = wal.append_async(&payload).map_err(|e| e.to_string())?.1;
                        inner
                            .metrics
                            .set_wal_backlog_bytes(wal.stats().since_checkpoint_bytes);
                    }
                    drop(dur);
                    for batch in batches {
                        if apply_op(&mut w, batch) {
                            applied += 1;
                        }
                    }
                    sync_discovery(&inner.metrics, &mut w);
                }
                inner
                    .tuples_hint
                    .store(w.relation.len() as u64, Ordering::Relaxed);
                inner.metrics.set_store_shape(
                    w.relation.segments().len() as u64,
                    w.relation.vocab_chunk_count() as u64,
                );
                // Republish only when the drain actually changed the
                // relation (prefiltered no-op batches leave the epoch
                // untouched) or no snapshot exists yet — snapshot builds
                // clone the rule set and rebuild the recommendation index,
                // so skipping them keeps ineffective drains cheap.
                let stale = match inner.published.read().expect("published lock").as_ref() {
                    Some(snap) => snap.relation_epoch() != w.relation.epoch(),
                    None => true,
                };
                if stale {
                    publish(inner, &w);
                }
                Ok((applied, ticket))
            })
        }));
        match pass {
            Ok((Ok((batch_count, ticket)), nanos)) => {
                inner.metrics.record_write_pass(batch_count, folded, nanos);
                // Policy check *before* the ack: a flush that observes
                // this drain also observes any checkpoint it triggered,
                // which keeps recovery-size guarantees deterministic for
                // clients that pace themselves with flush barriers.
                maybe_auto_checkpoint(inner);
                match ticket {
                    Some(ticket) => {
                        inflight.push_back((drained_to, ticket));
                        inner.metrics.set_unacked_drains(inflight.len() as u64);
                        if inflight.len() > MAX_PIPELINED_ACKS {
                            if let Err(msg) = retire_oldest(inner, &mut inflight) {
                                disable(inner, &format!("{msg}; dataset disabled"));
                                return;
                            }
                        }
                    }
                    None => ack(inner, drained_to),
                }
            }
            Ok((Err(msg), _)) => {
                // A drain that cannot be made durable must not be applied:
                // disabling the dataset is the only honest move, or the
                // served state would silently diverge from the log.
                disable(
                    inner,
                    &format!("cannot log a drain ({msg}); dataset disabled"),
                );
                return;
            }
            Err(_) => {
                disable(inner, "apply panicked; dataset disabled");
                return;
            }
        }
    }
}

/// The cheap half of a checkpoint, taken under the write mutex: clones
/// of the state to persist plus the pinned log position. Owning (not
/// borrowing) everything lets [`commit_checkpoint`] run on a helper
/// thread while the writer keeps draining.
struct CapturedCheckpoint {
    relation: AnnotatedRelation,
    miner: Option<IncrementalMiner>,
    discovery: DiscoveryIndex,
    publish_seq: u64,
    dir: PathBuf,
    prepared: anno_wal::PreparedCheckpoint,
}

/// Capture checkpoint state under an already-held checkpoint lock: a
/// persistent relation clone (O(#segments) pointer copies), a miner clone
/// (O(rule table), far below O(|D|)), the discovery index, the publish
/// counter, and the pinned log position. The writer appends under this
/// same mutex, so the position cannot drift past the captured state.
fn capture_checkpoint(
    inner: &Inner,
    _ckpt_guard: &std::sync::MutexGuard<'_, ()>,
) -> Result<CapturedCheckpoint, ServiceError> {
    let w = inner
        .write
        .lock()
        .map_err(|_| ServiceError::ShutDown(inner.name.clone()))?;
    let mut dur = inner.durability.lock().expect("wal lock");
    // anno-lint: allow(panic-path) -- both checkpoint entry points return Durability errors before this when no WAL is attached, and a WAL is never detached
    let wal = dur.as_mut().expect("checkpoint callers verify durability");
    let prepared = wal
        .prepare_checkpoint()
        .map_err(|e| ServiceError::Durability(e.to_string()))?;
    let dir = wal.dir().to_path_buf();
    drop(dur);
    Ok(CapturedCheckpoint {
        relation: w.relation.clone(),
        miner: w.miner.clone(),
        discovery: w.discovery.clone(),
        publish_seq: inner.publish_seq.load(Ordering::SeqCst),
        dir,
        prepared,
    })
}

/// The O(|D|) half: encode the captured state and durably write the
/// payload with no dataset lock held — drains, mines, and readers all
/// proceed — then take a brief wal lock to compact and reset the policy
/// accounting. Callers guarantee at most one commit is in flight at a
/// time (the `ckpt_lock`/`ckpt_helper` protocol), so positions reach
/// `finish_checkpoint` in capture order.
fn commit_checkpoint(
    inner: &Inner,
    cap: CapturedCheckpoint,
) -> Result<(LogPosition, usize), ServiceError> {
    let stall = *inner.encode_stall.lock().expect("stall lock");
    let (payload, encode_nanos) = timed(|| {
        if let Some(stall) = stall {
            std::thread::sleep(stall);
        }
        let snap_text = snapshot_to_string(&cap.relation);
        let miner_text = cap.miner.as_ref().map(|m| m.checkpoint_to_string());
        let discovery_text = cap.miner.as_ref().map(|_| cap.discovery.encode_to_string());
        walcodec::encode_checkpoint(
            &snap_text,
            miner_text.as_deref(),
            cap.publish_seq,
            discovery_text.as_deref(),
        )
    });
    inner.metrics.record_checkpoint_encode(encode_nanos);
    wal_checkpoint::write_checkpoint(&cap.dir, cap.prepared.position(), &payload)
        .map_err(|e| ServiceError::Durability(e.to_string()))?;
    {
        let mut dur = inner.durability.lock().expect("wal lock");
        // anno-lint: allow(panic-path) -- a capture only exists for a dataset with an attached WAL, and a WAL is never detached
        let wal = dur.as_mut().expect("checkpoint callers verify durability");
        wal.finish_checkpoint(&cap.prepared);
        inner
            .metrics
            .set_wal_backlog_bytes(wal.stats().since_checkpoint_bytes);
    }
    inner.metrics.record_checkpoint();
    Ok((cap.prepared.position(), payload.len()))
}

/// Run one full checkpoint cycle (capture + commit, synchronously) under
/// an already-held checkpoint lock. See [`Dataset::checkpoint`] for the
/// contract.
fn run_checkpoint(
    inner: &Inner,
    ckpt_guard: &std::sync::MutexGuard<'_, ()>,
) -> Result<(LogPosition, usize), ServiceError> {
    let cap = capture_checkpoint(inner, ckpt_guard)?;
    commit_checkpoint(inner, cap)
}

/// The automatic-checkpoint check the writer runs after each drain: fire
/// when the policy says the log has accumulated past a threshold. A
/// failed attempt is reported and retried after the next drain (the log
/// keeps growing but stays correct); a manual checkpoint already holding
/// the lock simply wins — it resets the same accounting.
///
/// The writer only *captures* here (pointer-cost clones under the
/// checkpoint lock); the O(|D|) encode-and-commit runs on a detached
/// helper thread parked in `ckpt_helper`, so the drain that tripped the
/// policy — and every drain after it — is never blocked on the encode.
/// At most one helper runs at a time, and a manual checkpoint joins it
/// before committing its own (see [`Dataset::checkpoint`]), so commits
/// still reach the log in capture order.
fn maybe_auto_checkpoint(inner: &Arc<Inner>) {
    {
        // Reap a finished helper — or bail while one is still committing
        // — *before* the due check: a commit that just landed already
        // reset the policy accounting this check reads.
        let mut slot = inner.ckpt_helper.lock().expect("helper lock");
        if let Some(h) = slot.as_ref() {
            if !h.is_finished() {
                return;
            }
            // anno-lint: allow(panic-path) -- slot.as_ref() matched Some on the line above and the lock is still held
            let _ = slot.take().expect("just checked").join();
        }
    }
    let policy = *inner.auto_checkpoint.lock().expect("policy lock");
    if !policy.is_enabled() {
        return;
    }
    let due = match inner.durability.lock().expect("wal lock").as_ref() {
        Some(wal) => policy.due(&wal.stats()),
        None => return,
    };
    if !due {
        return;
    }
    let Ok(guard) = inner.ckpt_lock.try_lock() else {
        return;
    };
    let cap = match capture_checkpoint(inner, &guard) {
        Ok(cap) => cap,
        Err(e) => {
            eprintln!(
                "annod: dataset {:?}: auto-checkpoint failed ({e}); retrying after the next drain",
                inner.name
            );
            return;
        }
    };
    let helper_inner = Arc::clone(inner);
    let spawned = std::thread::Builder::new()
        .name(format!("annod-ckpt-{}", inner.name))
        .spawn(move || match commit_checkpoint(&helper_inner, cap) {
            Ok((position, bytes)) => {
                helper_inner.metrics.record_auto_checkpoint();
                helper_inner.journal.record(
                    "auto_checkpoint",
                    format!("position={position} payload_bytes={bytes}"),
                );
            }
            Err(e) => eprintln!(
                "annod: dataset {:?}: auto-checkpoint failed ({e}); \
                 retrying after the next drain",
                helper_inner.name
            ),
        });
    match spawned {
        Ok(handle) => {
            *inner.ckpt_helper.lock().expect("helper lock") = Some(handle);
        }
        Err(e) => eprintln!(
            "annod: dataset {:?}: cannot spawn checkpoint helper ({e}); \
             retrying after the next drain",
            inner.name
        ),
    }
}

/// Apply one coalesced batch: through the miner's incremental maintenance
/// once mined, directly to the relation during the pre-mine loading phase.
///
/// Ops are pre-filtered against the relation first: a batch that cannot
/// change anything (dead targets, already-present/absent annotations,
/// comment-only rows) returns `false` before any mutation, so ineffective
/// drains neither touch the segment store (whose own no-op prechecks keep
/// shared segments shared) nor intern stray names into the vocabulary.
/// Returns `true` iff a maintenance pass actually ran.
fn apply_op(state: &mut WriteState, op: UpdateOp) -> bool {
    let Some(mut op) = prefilter(&state.relation, op) else {
        return false;
    };
    canonicalize_batch(&mut op);
    let WriteState {
        relation, miner, ..
    } = state;
    let rel = relation;
    match op {
        UpdateOp::InsertRows(lines) => {
            let tuples: Vec<Tuple> = lines
                .iter()
                .filter_map(|line| parse_tuple_line(rel.vocab_mut(), line))
                .collect();
            insert_tuples(rel, miner, tuples);
        }
        UpdateOp::InsertTuples(tuples) => insert_tuples(rel, miner, tuples),
        UpdateOp::Annotate(updates) => annotate(rel, miner, updates),
        UpdateOp::AnnotateNamed(named) => {
            let updates: Vec<AnnotationUpdate> = named
                .into_iter()
                .map(|(tuple, name)| {
                    // Read-only resolution first: `vocab_mut` copy-on-writes
                    // the whole interner when a published snapshot shares
                    // it, so only genuinely new names may pay that.
                    let annotation = rel
                        .vocab()
                        .get(ItemKind::Annotation, &name)
                        .unwrap_or_else(|| rel.vocab_mut().annotation(&name));
                    AnnotationUpdate { tuple, annotation }
                })
                .collect();
            annotate(rel, miner, updates);
        }
        UpdateOp::RemoveAnnotations(updates) => remove(rel, miner, &updates),
        UpdateOp::RemoveNamed(named) => {
            let updates: Vec<AnnotationUpdate> = named
                .into_iter()
                .filter_map(|(tuple, name)| {
                    rel.vocab()
                        .get(ItemKind::Annotation, &name)
                        .map(|annotation| AnnotationUpdate { tuple, annotation })
                })
                .collect();
            remove(rel, miner, &updates);
        }
        UpdateOp::DeleteTuples(tids) => match miner {
            Some(m) => {
                m.delete_tuples(rel, &tids);
            }
            None => {
                for tid in tids {
                    rel.delete_tuple(tid);
                }
            }
        },
    }
    true
}

/// Group a batch's updates by target tuple — and therefore by segment,
/// since segment id is `tid >> SEGMENT_BITS` — before applying. A
/// scatter-heavy batch then walks each touched segment's updates
/// back-to-back: the segment (and its postings) is pulled into cache
/// once, its copy-on-write clone is amortized across all of its updates,
/// and the application order is deterministic.
///
/// Determinism matters beyond tidiness: WAL replay runs this same sort
/// (both paths go through [`apply_op`]), so name-interning order — and
/// with it every raw item id — is identical live and after recovery. The
/// sort is stable, keeping same-tuple updates in client order; insert ops
/// are never reordered (tuple ids are assigned by arrival).
fn sort_for_segment_locality(op: &mut UpdateOp) {
    match op {
        UpdateOp::Annotate(updates) | UpdateOp::RemoveAnnotations(updates) => {
            updates.sort_by_key(|u| u.tuple);
        }
        UpdateOp::AnnotateNamed(named) | UpdateOp::RemoveNamed(named) => {
            named.sort_by_key(|(tid, _)| *tid);
        }
        UpdateOp::DeleteTuples(tids) => tids.sort_unstable(),
        UpdateOp::InsertRows(_) | UpdateOp::InsertTuples(_) => {}
    }
}

/// The canonical batch form every path agrees on — the live writer
/// before logging, [`apply_op`] (and therefore WAL replay, including
/// logs written before the dedupe existed): [`sort_for_segment_locality`]
/// followed by [`dedupe_within_batch`]. Idempotent, so re-canonicalizing
/// an already-canonical batch (replay of a post-dedupe log) is a no-op.
fn canonicalize_batch(op: &mut UpdateOp) {
    sort_for_segment_locality(op);
    dedupe_within_batch(op);
}

/// Drop updates that repeat an earlier one in the same batch. The
/// `effective`/`prefilter` screen checks each update against the
/// pre-batch relation only, so when [`coalesce`] merges two clients'
/// ops targeting the same `(tuple, annotation)` into one batch, both
/// pass the screen — the echo must be dropped here or it is logged,
/// replayed, and pushed through the maintenance path on every recovery.
/// Keep-first is canonical: the locality sort is stable, so the first
/// occurrence in client order survives. Insert batches are untouched —
/// repeated rows are distinct tuples by definition.
fn dedupe_within_batch(op: &mut UpdateOp) {
    match op {
        UpdateOp::Annotate(updates) | UpdateOp::RemoveAnnotations(updates) => {
            let mut seen = FxHashSet::default();
            updates.retain(|u| seen.insert((u.tuple, u.annotation)));
        }
        UpdateOp::AnnotateNamed(named) | UpdateOp::RemoveNamed(named) => {
            let mut seen: FxHashSet<(TupleId, String)> = FxHashSet::default();
            named.retain(|(tid, name)| seen.insert((*tid, name.clone())));
        }
        // Already sorted; duplicates are adjacent.
        UpdateOp::DeleteTuples(tids) => tids.dedup(),
        UpdateOp::InsertRows(_) | UpdateOp::InsertTuples(_) => {}
    }
}

/// Per-element effectiveness predicates, shared verbatim by
/// [`op_has_effect`] (folded with `any`) and [`prefilter`] (folded with
/// `filter`). Keeping them in one place is load-bearing: the writer
/// neither logs nor applies a drain the screen deems ineffective, so a
/// divergence between the two callers would silently drop acknowledged
/// client updates. All predicates are read-only — never interning.
mod effective {
    use super::*;

    /// A text row that parses to at least one item. Comment/blank/
    /// separator-only rows would otherwise silently inflate every support
    /// denominator.
    pub(super) fn row(line: &str) -> bool {
        anno_store::line_has_items(line)
    }

    /// A tuple with items — the pre-parsed form of the same hazard
    /// [`row`] guards on the text path.
    pub(super) fn tuple(t: &Tuple) -> bool {
        !t.items().is_empty()
    }

    /// An annotation add that is correctly kinded (a data-kind Item would
    /// panic the store's annotate path inside the writer thread), live-
    /// targeted, and not already present.
    pub(super) fn annotate(rel: &AnnotatedRelation, u: &AnnotationUpdate) -> bool {
        u.annotation.is_annotation_like()
            && rel
                .tuple(u.tuple)
                .is_some_and(|t| !t.contains(u.annotation))
    }

    /// A named annotation add with a live target whose name is new or not
    /// yet attached. Dropping dead targets keeps the vocabulary free of
    /// names that never attach to anything.
    pub(super) fn annotate_named(rel: &AnnotatedRelation, tid: TupleId, name: &str) -> bool {
        match rel.tuple(tid) {
            None => false,
            Some(t) => rel
                .vocab()
                .get(ItemKind::Annotation, name)
                .is_none_or(|item| !t.contains(item)),
        }
    }

    /// An annotation removal that is correctly kinded and actually held.
    pub(super) fn remove(rel: &AnnotatedRelation, u: &AnnotationUpdate) -> bool {
        u.annotation.is_annotation_like()
            && rel.tuple(u.tuple).is_some_and(|t| t.contains(u.annotation))
    }

    /// A named removal whose name resolves and is attached to the target.
    pub(super) fn remove_named(rel: &AnnotatedRelation, tid: TupleId, name: &str) -> bool {
        rel.vocab()
            .get(ItemKind::Annotation, name)
            .is_some_and(|item| rel.tuple(tid).is_some_and(|t| t.contains(item)))
    }

    /// A deletion of a still-live tuple.
    pub(super) fn delete(rel: &AnnotatedRelation, tid: TupleId) -> bool {
        rel.is_live(tid)
    }
}

/// `true` iff applying `op` to `rel` would change anything — the
/// [`effective`] predicates folded with `any`, without consuming the op.
/// Used by the writer to decide whether a drain deserves a WAL append at
/// all: if every batch is ineffective against the current state, applying
/// them in sequence leaves the state unchanged at every step, so the
/// whole drain is skippable.
fn op_has_effect(rel: &AnnotatedRelation, op: &UpdateOp) -> bool {
    match op {
        UpdateOp::InsertRows(lines) => lines.iter().any(|line| effective::row(line)),
        UpdateOp::InsertTuples(tuples) => tuples.iter().any(effective::tuple),
        UpdateOp::Annotate(updates) => updates.iter().any(|u| effective::annotate(rel, u)),
        UpdateOp::AnnotateNamed(named) => named
            .iter()
            .any(|(tid, name)| effective::annotate_named(rel, *tid, name)),
        UpdateOp::RemoveAnnotations(updates) => updates.iter().any(|u| effective::remove(rel, u)),
        UpdateOp::RemoveNamed(named) => named
            .iter()
            .any(|(tid, name)| effective::remove_named(rel, *tid, name)),
        UpdateOp::DeleteTuples(tids) => tids.iter().any(|&tid| effective::delete(rel, tid)),
    }
}

/// Drop the parts of `op` that are no-ops against the current relation —
/// the [`effective`] predicates folded with `filter` — returning `None`
/// if nothing effective remains.
fn prefilter(rel: &AnnotatedRelation, op: UpdateOp) -> Option<UpdateOp> {
    let filtered = match op {
        UpdateOp::InsertRows(lines) => UpdateOp::InsertRows(
            lines
                .into_iter()
                .filter(|line| effective::row(line))
                .collect(),
        ),
        UpdateOp::InsertTuples(tuples) => {
            UpdateOp::InsertTuples(tuples.into_iter().filter(effective::tuple).collect())
        }
        UpdateOp::Annotate(updates) => UpdateOp::Annotate(
            updates
                .into_iter()
                .filter(|u| effective::annotate(rel, u))
                .collect(),
        ),
        UpdateOp::AnnotateNamed(named) => UpdateOp::AnnotateNamed(
            named
                .into_iter()
                .filter(|(tid, name)| effective::annotate_named(rel, *tid, name))
                .collect(),
        ),
        UpdateOp::RemoveAnnotations(updates) => UpdateOp::RemoveAnnotations(
            updates
                .into_iter()
                .filter(|u| effective::remove(rel, u))
                .collect(),
        ),
        UpdateOp::RemoveNamed(named) => UpdateOp::RemoveNamed(
            named
                .into_iter()
                .filter(|(tid, name)| effective::remove_named(rel, *tid, name))
                .collect(),
        ),
        UpdateOp::DeleteTuples(tids) => UpdateOp::DeleteTuples(
            tids.into_iter()
                .filter(|&tid| effective::delete(rel, tid))
                .collect(),
        ),
    };
    (!filtered.is_empty()).then_some(filtered)
}

fn insert_tuples(
    rel: &mut AnnotatedRelation,
    miner: &mut Option<IncrementalMiner>,
    tuples: Vec<Tuple>,
) {
    if tuples.is_empty() {
        return;
    }
    match miner {
        // Case split keeps the miner's per-case statistics meaningful.
        Some(m) if tuples.iter().all(Tuple::is_unannotated) => {
            m.add_unannotated_tuples(rel, tuples);
        }
        Some(m) => {
            m.add_annotated_tuples(rel, tuples);
        }
        None => {
            rel.extend(tuples);
        }
    }
}

fn annotate(
    rel: &mut AnnotatedRelation,
    miner: &mut Option<IncrementalMiner>,
    updates: Vec<AnnotationUpdate>,
) {
    match miner {
        Some(m) => {
            m.apply_annotations(rel, updates);
        }
        None => {
            rel.apply_annotation_batch(updates);
        }
    }
}

fn remove(
    rel: &mut AnnotatedRelation,
    miner: &mut Option<IncrementalMiner>,
    updates: &[AnnotationUpdate],
) {
    match miner {
        Some(m) => {
            m.remove_annotations(rel, updates);
        }
        None => {
            for u in updates {
                rel.remove_annotation(u.tuple, u.annotation);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anno_mine::Thresholds;
    use anno_store::TupleId;

    fn config() -> IncrementalConfig {
        IncrementalConfig {
            thresholds: Thresholds::new(0.4, 0.7),
            ..Default::default()
        }
    }

    const FIG4: [&str; 5] = [
        "28 85 Annot_1",
        "28 85 Annot_1",
        "28 85 Annot_1",
        "28 85",
        "17 99",
    ];

    fn loaded() -> Dataset {
        let ds = Dataset::spawn("db", config()).unwrap();
        ds.enqueue(UpdateOp::InsertRows(
            FIG4.iter().map(|s| s.to_string()).collect(),
        ))
        .unwrap();
        ds
    }

    #[test]
    fn pre_mine_loading_then_mine_publishes() {
        let ds = loaded();
        assert!(!ds.is_mined());
        assert!(matches!(ds.snapshot(), Err(ServiceError::NotMined(_))));
        let snap = ds.mine().unwrap();
        assert_eq!(snap.db_size(), 5);
        assert_eq!(snap.rules().len(), 3);
        assert_eq!(snap.epoch(), 1);
    }

    #[test]
    fn queued_updates_republish_and_stay_exact() {
        let ds = loaded();
        let first = ds.mine().unwrap();
        ds.enqueue(UpdateOp::AnnotateNamed(vec![(
            TupleId(3),
            "Annot_1".into(),
        )]))
        .unwrap();
        ds.enqueue(UpdateOp::InsertRows(vec!["17 99 Annot_2".into()]))
            .unwrap();
        ds.flush().unwrap();
        let snap = ds.snapshot().unwrap();
        assert!(snap.epoch() > first.epoch());
        assert_eq!(snap.db_size(), 6);
        // The pre-update snapshot is untouched (copy-on-write relation).
        assert_eq!(first.db_size(), 5);
        assert!(ds.verify().unwrap());
        let m = ds.metrics();
        assert!(m.batches_applied >= 2);
        assert!(m.snapshots_published >= 2);
    }

    #[test]
    fn deletion_ops_flow_through_the_miner() {
        let ds = loaded();
        ds.mine().unwrap();
        ds.enqueue(UpdateOp::RemoveNamed(vec![
            (TupleId(0), "Annot_1".into()),
            (TupleId(0), "NoSuchAnnotation".into()),
        ]))
        .unwrap();
        ds.enqueue(UpdateOp::DeleteTuples(vec![TupleId(4)]))
            .unwrap();
        ds.flush().unwrap();
        let snap = ds.snapshot().unwrap();
        assert_eq!(snap.db_size(), 4);
        assert!(ds.verify().unwrap());
        assert!(snap.stats().deletion_batches >= 2);
    }

    #[test]
    fn ineffective_drains_neither_republish_nor_pollute_the_vocab() {
        let ds = loaded();
        let snap = ds.mine().unwrap();
        // Dead target, duplicate annotation, unknown removal, dead delete:
        // all no-ops; none may cost a republish or intern a stray name.
        ds.enqueue(UpdateOp::AnnotateNamed(vec![(
            TupleId(999),
            "StrayName".into(),
        )]))
        .unwrap();
        ds.enqueue(UpdateOp::AnnotateNamed(vec![(
            TupleId(0),
            "Annot_1".into(),
        )]))
        .unwrap();
        ds.enqueue(UpdateOp::RemoveNamed(vec![(TupleId(0), "NoSuch".into())]))
            .unwrap();
        ds.enqueue(UpdateOp::DeleteTuples(vec![TupleId(999)]))
            .unwrap();
        let batches_before = ds.metrics().batches_applied;
        ds.flush().unwrap();
        let after = ds.snapshot().unwrap();
        assert_eq!(
            after.epoch(),
            snap.epoch(),
            "no-op drain must not republish"
        );
        assert_eq!(
            ds.metrics().batches_applied,
            batches_before,
            "prefiltered batches must not count as applied"
        );
        assert!(
            after
                .relation()
                .vocab()
                .get(anno_store::ItemKind::Annotation, "StrayName")
                .is_none(),
            "dead-target annotate must not intern its name"
        );
        // An effective op afterwards still publishes normally.
        ds.enqueue(UpdateOp::AnnotateNamed(vec![(
            TupleId(3),
            "Annot_1".into(),
        )]))
        .unwrap();
        ds.flush().unwrap();
        assert!(ds.snapshot().unwrap().epoch() > snap.epoch());
        assert!(ds.verify().unwrap());
    }

    #[test]
    fn annotating_known_names_never_copies_the_vocabulary() {
        let ds = loaded();
        let before = ds.mine().unwrap();
        // Every name below is already interned: the apply path must
        // resolve them read-only, so the published snapshot keeps sharing
        // the vocabulary `Arc` across the drain.
        ds.enqueue(UpdateOp::AnnotateNamed(vec![
            (TupleId(3), "Annot_1".into()),
            (TupleId(4), "Annot_1".into()),
        ]))
        .unwrap();
        ds.flush().unwrap();
        let after = ds.snapshot().unwrap();
        assert!(after.epoch() > before.epoch(), "drain was effective");
        assert!(
            after.relation().shares_vocab_with(before.relation()),
            "annotate-only drain over known names must not copy the interner"
        );
        // A genuinely new name still interns (and unshares) as intended.
        ds.enqueue(UpdateOp::InsertRows(vec!["55 66 Fresh_Ann".into()]))
            .unwrap();
        ds.flush().unwrap();
        let third = ds.snapshot().unwrap();
        assert!(!third.relation().shares_vocab_with(after.relation()));
        assert!(third
            .relation()
            .vocab()
            .get(anno_store::ItemKind::Annotation, "Fresh_Ann")
            .is_some());
    }

    #[test]
    fn insert_heavy_drains_share_all_non_tail_vocab_chunks() {
        use anno_store::{ItemKind, VOCAB_CHUNK_CAP};
        // Seed enough distinct data values that the data namespace spans
        // several full arena chunks before the drain under test.
        let ds = Dataset::spawn("db", config()).unwrap();
        let rows: Vec<String> = (0..(VOCAB_CHUNK_CAP * 2 + 40))
            .map(|i| format!("{} {}", 10_000 + i, 90_000 + i))
            .collect();
        ds.enqueue(UpdateOp::InsertRows(rows)).unwrap();
        let before = ds.mine().unwrap();
        let pre_data_count = before.relation().vocab().count(ItemKind::Data);
        let pre_chunks = before.relation().vocab_chunk_count();

        // Insert-heavy drain: fresh data values AND fresh annotation
        // names, the worst case for a monolithic interner.
        ds.enqueue(UpdateOp::InsertRows(
            (0..64)
                .map(|i| format!("{} New_Ann_{i}", 500_000 + i))
                .collect(),
        ))
        .unwrap();
        ds.flush().unwrap();
        let after = ds.snapshot().unwrap();
        assert!(
            !after.relation().shares_vocab_with(before.relation()),
            "fresh names must unshare the outer vocabulary"
        );
        // Chunk-level sharing is exact: only the partial data tail chunk
        // is copied (the annotation namespace had no full chunks; its
        // pre-drain tail — Annot-free here — was empty or partial).
        let shared = after.relation().vocab_shared_chunks_with(before.relation());
        let data_tail_partial = usize::from(pre_data_count % VOCAB_CHUNK_CAP != 0);
        assert_eq!(
            shared,
            pre_chunks - data_tail_partial,
            "insert-heavy drain must keep all non-tail chunks shared \
             (pre-drain {pre_chunks} chunks)"
        );
        assert!(
            shared >= pre_data_count / VOCAB_CHUNK_CAP,
            "every full data chunk stays shared"
        );
        assert!(ds.verify().unwrap());
    }

    #[test]
    fn mis_kinded_annotate_is_dropped_not_fatal() {
        // A data-kind Item in an annotation op would panic the store's
        // annotate path inside the writer; prefilter must screen it out so
        // the dataset survives (previously: dead writer + 120s flush hang).
        let ds = loaded();
        ds.mine().unwrap();
        ds.enqueue(UpdateOp::Annotate(vec![AnnotationUpdate {
            tuple: TupleId(0),
            annotation: anno_store::Item::data(42),
        }]))
        .unwrap();
        ds.enqueue(UpdateOp::RemoveAnnotations(vec![AnnotationUpdate {
            tuple: TupleId(0),
            annotation: anno_store::Item::data(42),
        }]))
        .unwrap();
        ds.flush().unwrap();
        assert!(ds.verify().unwrap(), "dataset still serving and exact");
    }

    #[test]
    fn backpressure_blocks_enqueue_without_deadlock_or_loss() {
        let ds = loaded();
        ds.mine().unwrap();
        // Tiny high-water mark: every enqueue below must ride through the
        // wait path at least once and still land exactly once.
        ds.inner.queue.lock().unwrap().cap_updates = 2;
        for round in 0..20u32 {
            ds.enqueue(UpdateOp::InsertRows(vec![
                format!("{} {}", 1_000 + round, 2_000 + round),
                format!("{} {}", 3_000 + round, 4_000 + round),
            ]))
            .unwrap();
        }
        ds.flush().unwrap();
        let snap = ds.snapshot().unwrap();
        assert_eq!(
            snap.db_size(),
            5 + 40,
            "no queued row lost under backpressure"
        );
        assert!(ds.verify().unwrap());
    }

    fn test_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("anno-dataset-{}-{}", tag, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn scattered_batches_apply_in_segment_order_and_stay_exact() {
        // Two datasets, identical updates, opposite within-batch orders:
        // the writer's segment-locality sort must make them converge to
        // byte-identical state (same interning order included), and the
        // maintained rules must stay exact under the reordering.
        let rows: Vec<String> = (0..40).map(|i| format!("{} {}", i % 7, 100 + i)).collect();
        let mut batch: Vec<(TupleId, String)> = (0..40)
            .map(|i| (TupleId(i), format!("Ann_{}", i % 5)))
            .collect();
        let make = |batch: &[(TupleId, String)]| {
            let ds = Dataset::spawn("db", config()).unwrap();
            ds.enqueue(UpdateOp::InsertRows(rows.clone())).unwrap();
            ds.mine().unwrap();
            ds.enqueue(UpdateOp::AnnotateNamed(batch.to_vec())).unwrap();
            ds.enqueue(UpdateOp::DeleteTuples(vec![
                TupleId(33),
                TupleId(2),
                TupleId(17),
            ]))
            .unwrap();
            ds.flush().unwrap();
            assert!(ds.verify().unwrap());
            snapshot_to_string(ds.snapshot().unwrap().relation())
        };
        let forward = make(&batch);
        batch.reverse();
        let reversed = make(&batch);
        assert_eq!(forward, reversed, "apply order is canonical per batch");
    }

    #[test]
    fn durable_dataset_round_trips_across_reopen() {
        let dir = test_dir("roundtrip");
        let epoch_before;
        let snap_epoch_before;
        let text_before;
        {
            let ds = Dataset::open("db", config(), &dir).unwrap();
            ds.enqueue(UpdateOp::InsertRows(
                FIG4.iter().map(|s| s.to_string()).collect(),
            ))
            .unwrap();
            ds.mine().unwrap();
            ds.enqueue(UpdateOp::AnnotateNamed(vec![(
                TupleId(3),
                "Annot_1".into(),
            )]))
            .unwrap();
            ds.flush().unwrap();
            assert!(ds.is_durable());
            let stats = ds.wal_stats().unwrap();
            assert!(stats.appends >= 2, "drains + mine are logged: {stats:?}");
            let snap = ds.snapshot().unwrap();
            epoch_before = snap.relation_epoch();
            snap_epoch_before = snap.epoch();
            text_before = snapshot_to_string(snap.relation());
        }
        let ds = Dataset::open("db", config(), &dir).unwrap();
        assert!(ds.is_mined(), "mine event replays from the log");
        let snap = ds.snapshot().unwrap();
        assert_eq!(snap.relation_epoch(), epoch_before, "epoch survives");
        assert_eq!(snapshot_to_string(snap.relation()), text_before);
        // Snapshot (publish) epochs are monotone across the reopen: the
        // recovered publish counter is seeded past anything the previous
        // process handed out, so no client ever sees time run backwards.
        assert!(
            snap.epoch() > snap_epoch_before,
            "snapshot epoch regressed across reopen: {} -> {}",
            snap_epoch_before,
            snap.epoch()
        );
        assert!(ds.verify().unwrap());
        // And the recovered dataset keeps serving writes durably, with
        // epochs still advancing.
        ds.enqueue(UpdateOp::InsertRows(vec!["28 85 Annot_1".into()]))
            .unwrap();
        ds.flush().unwrap();
        let after = ds.snapshot().unwrap();
        assert!(after.relation_epoch() > epoch_before);
        assert!(after.epoch() > snap.epoch());
        drop(ds);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn coalesced_duplicate_pairs_from_two_clients_dedupe_to_one_update() {
        // Two clients annotate the same (tuple, annotation) in one drain
        // window: coalesce folds the ops into one batch in which both
        // updates pass the pre-batch effectiveness screen. The canonical
        // form must carry the pair once (keep-first), for every
        // duplicate-prone op kind.
        let two = |a: UpdateOp, b: UpdateOp| {
            let (mut batches, folded) = coalesce(vec![a, b]);
            assert_eq!(batches.len(), 1, "same-kind ops coalesce");
            assert_eq!(folded, 1);
            canonicalize_batch(&mut batches[0]);
            batches.remove(0)
        };
        let named = |tid: u32| UpdateOp::AnnotateNamed(vec![(TupleId(tid), "A".into())]);
        assert_eq!(two(named(3), named(3)).len(), 1);
        let update = AnnotationUpdate {
            tuple: TupleId(3),
            annotation: anno_store::Item::annotation(1),
        };
        assert_eq!(
            two(
                UpdateOp::Annotate(vec![update]),
                UpdateOp::Annotate(vec![update]),
            )
            .len(),
            1
        );
        assert_eq!(
            two(
                UpdateOp::RemoveNamed(vec![(TupleId(3), "A".into())]),
                UpdateOp::RemoveNamed(vec![(TupleId(3), "A".into())]),
            )
            .len(),
            1
        );
        assert_eq!(
            two(
                UpdateOp::DeleteTuples(vec![TupleId(3)]),
                UpdateOp::DeleteTuples(vec![TupleId(3)]),
            )
            .len(),
            1
        );
        // Distinct updates survive; keep-first preserves client order
        // within a tuple.
        let mixed = two(
            UpdateOp::AnnotateNamed(vec![(TupleId(3), "A".into()), (TupleId(2), "B".into())]),
            UpdateOp::AnnotateNamed(vec![(TupleId(3), "B".into()), (TupleId(3), "A".into())]),
        );
        match mixed {
            UpdateOp::AnnotateNamed(named) => {
                assert_eq!(
                    named,
                    vec![
                        (TupleId(2), "B".to_string()),
                        (TupleId(3), "A".to_string()),
                        (TupleId(3), "B".to_string()),
                    ]
                );
            }
            other => panic!("wrong kind: {other:?}"),
        }
        // Repeated rows are distinct inserts — never deduped.
        let rows = two(
            UpdateOp::InsertRows(vec!["1 2 X".into()]),
            UpdateOp::InsertRows(vec!["1 2 X".into()]),
        );
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn checkpoint_compacts_and_recovery_prefers_it() {
        let dir = test_dir("checkpoint");
        {
            let ds = Dataset::open("db", config(), &dir).unwrap();
            ds.enqueue(UpdateOp::InsertRows(
                FIG4.iter().map(|s| s.to_string()).collect(),
            ))
            .unwrap();
            ds.mine().unwrap();
            let (pos, bytes) = ds.checkpoint().unwrap();
            assert!(bytes > 0);
            assert!(pos.segment >= 1, "checkpoint seals the active segment");
            // Post-checkpoint drain: must replay on top of the restored
            // checkpoint.
            ds.enqueue(UpdateOp::AnnotateNamed(vec![(
                TupleId(3),
                "Annot_1".into(),
            )]))
            .unwrap();
            ds.flush().unwrap();
            assert_eq!(ds.metrics().checkpoints, 1);
        }
        let ds = Dataset::open("db", config(), &dir).unwrap();
        let stats = ds.wal_stats().unwrap();
        assert_eq!(
            stats.replayed_records, 1,
            "only the post-checkpoint drain replays: {stats:?}"
        );
        let snap = ds.snapshot().unwrap();
        assert_eq!(snap.db_size(), 5);
        assert_eq!(
            snap.relation()
                .tuple(TupleId(3))
                .unwrap()
                .annotations()
                .len(),
            1,
            "post-checkpoint annotate recovered"
        );
        assert!(ds.verify().unwrap());
        drop(ds);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_on_a_memory_only_dataset_is_refused() {
        let ds = loaded();
        assert!(matches!(ds.checkpoint(), Err(ServiceError::Durability(_))));
        assert!(ds.wal_stats().is_none());
        assert!(!ds.is_durable());
    }

    #[test]
    fn ineffective_drains_are_not_logged() {
        let dir = test_dir("noop-drains");
        {
            let ds = Dataset::open("db", config(), &dir).unwrap();
            ds.enqueue(UpdateOp::InsertRows(
                FIG4.iter().map(|s| s.to_string()).collect(),
            ))
            .unwrap();
            ds.mine().unwrap();
            let appends_before = ds.wal_stats().unwrap().appends;
            // Dead target + duplicate + dead delete: all ineffective.
            ds.enqueue(UpdateOp::AnnotateNamed(vec![(
                TupleId(999),
                "Stray".into(),
            )]))
            .unwrap();
            ds.enqueue(UpdateOp::AnnotateNamed(vec![(
                TupleId(0),
                "Annot_1".into(),
            )]))
            .unwrap();
            ds.enqueue(UpdateOp::DeleteTuples(vec![TupleId(999)]))
                .unwrap();
            ds.flush().unwrap();
            assert_eq!(
                ds.wal_stats().unwrap().appends,
                appends_before,
                "a no-op drain must not cost a log append"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shutdown_rejects_new_work_but_drains_old() {
        let ds = loaded();
        ds.mine().unwrap();
        ds.enqueue(UpdateOp::AnnotateNamed(vec![(
            TupleId(3),
            "Annot_1".into(),
        )]))
        .unwrap();
        ds.shutdown();
        assert!(matches!(
            ds.enqueue(UpdateOp::DeleteTuples(vec![TupleId(0)])),
            Err(ServiceError::ShutDown(_))
        ));
        // The queued annotate was drained before the writer exited.
        let snap = ds.try_snapshot().unwrap();
        assert_eq!(
            snap.relation()
                .tuple(TupleId(3))
                .unwrap()
                .annotations()
                .len(),
            1
        );
    }

    #[test]
    fn discovery_publishes_in_lock_step_with_rules() {
        let ds = Dataset::spawn("db", config()).unwrap();
        ds.enqueue(UpdateOp::InsertRows(vec![
            "28 85 Annot_1 Annot_2".into(),
            "28 85 Annot_1 Annot_2".into(),
            "28 85 Annot_1".into(),
            "28 85".into(),
            "17 99".into(),
        ]))
        .unwrap();
        assert!(matches!(ds.discovery(), Err(ServiceError::NotMined(_))));
        assert!(ds.try_discovery().is_none());
        ds.mine().unwrap();
        let disco = ds.discovery().unwrap();
        let snap = ds.snapshot().unwrap();
        assert_eq!(disco.epoch, snap.epoch(), "published at the same instant");
        assert_eq!(disco.db_size, 5);
        assert!(
            disco.pairs_tracked >= 1,
            "the Annot_1×Annot_2 co-occurrence must be tracked: {disco:?}"
        );
        // An effective drain republishes both, still in lock-step.
        ds.enqueue(UpdateOp::InsertRows(vec!["17 99 Annot_2".into()]))
            .unwrap();
        ds.flush().unwrap();
        let disco2 = ds.discovery().unwrap();
        let snap2 = ds.snapshot().unwrap();
        assert!(disco2.epoch > disco.epoch, "drain refreshed discovery");
        assert_eq!(disco2.epoch, snap2.epoch());
        assert_eq!(disco2.db_size, 6);
        assert!(disco2.stats.updates >= 1 || disco2.stats.rebuilds >= 1);
    }

    #[test]
    fn legacy_checkpoint_without_discovery_rebuilds_from_the_miner() {
        // A pre-discovery checkpoint payload decodes with no discovery
        // section; restore must fall back to a full rebuild off the
        // miner's itemset table, not serve an empty index.
        let ds = loaded();
        ds.mine().unwrap();
        let snap = ds.snapshot().unwrap();
        let miner = IncrementalMiner::mine_initial(snap.relation(), config());
        let restored =
            restore_discovery(None, Some(&miner), |ctx, e| format!("{ctx}: {e}")).unwrap();
        assert_eq!(
            restored.pairs_tracked(),
            DiscoveryIndex::rebuilt_from(miner.table()).pairs_tracked()
        );
        assert!(restored.verify_against_rescan(miner.table()));
        // And with no miner either (never-mined legacy dataset), the
        // index starts empty rather than erroring.
        let empty = restore_discovery(None, None, |ctx, e| format!("{ctx}: {e}")).unwrap();
        assert_eq!(empty.pairs_tracked(), 0);
    }

    #[test]
    fn name_cache_serves_hits_and_picks_up_names_interned_by_later_drains() {
        let ds = loaded();
        ds.mine().unwrap();
        let snap = ds.snapshot().unwrap();
        let vocab = snap.relation().vocab();
        let kind = anno_store::ItemKind::Annotation;

        // First resolve walks the HAMT and fills the cache; the second is
        // a pure lookaside hit.
        let item = ds.resolve_cached(vocab, kind, "Annot_1").unwrap();
        let m = ds.metrics();
        assert_eq!((m.name_cache_hits, m.name_cache_misses), (0, 1));
        assert_eq!(ds.resolve_cached(vocab, kind, "Annot_1"), Some(item));
        let m = ds.metrics();
        assert_eq!((m.name_cache_hits, m.name_cache_misses), (1, 1));

        // Negative results are never cached — the very next drain may
        // intern the name (and neither counter moves for an absence).
        assert_eq!(ds.resolve_cached(vocab, kind, "Late_Ann"), None);
        let m = ds.metrics();
        assert_eq!((m.name_cache_hits, m.name_cache_misses), (1, 1));

        ds.enqueue(UpdateOp::InsertRows(vec!["55 66 Late_Ann".into()]))
            .unwrap();
        ds.flush().unwrap();
        let snap2 = ds.snapshot().unwrap();
        let vocab2 = snap2.relation().vocab();
        let late = ds.resolve_cached(vocab2, kind, "Late_Ann").unwrap();
        assert_eq!(vocab2.get(kind, "Late_Ann"), Some(late));
        let m = ds.metrics();
        assert_eq!((m.name_cache_hits, m.name_cache_misses), (1, 2));
        assert_eq!(ds.resolve_cached(vocab2, kind, "Late_Ann"), Some(late));
        // Old entries stay valid across the drain: interning is
        // append-only, so the cached item still names the same string.
        assert_eq!(ds.resolve_cached(vocab2, kind, "Annot_1"), Some(item));
        let m = ds.metrics();
        assert_eq!((m.name_cache_hits, m.name_cache_misses), (3, 2));
    }
}
