//! Replication suite (ISSUE 7 acceptance): leader/follower log shipping
//! over the WAL, kill-the-leader failover, crash injection, checkpoint
//! races, and a live-tail soak.
//!
//! The contract under test:
//!
//! * **Failover serves exactly the committed prefix.** Kill the leader
//!   (drop it, then tear the last log frame the way a power loss would),
//!   promote the follower: it serves exactly the state a fresh recovery
//!   of that directory reports, `verify_against_remine` holds, publish
//!   epochs never regress across the role flip, and new writes flow.
//! * **Follower replay and leader recovery agree.** Damage the log at an
//!   arbitrary byte: the prefix a tailing follower converges to is the
//!   same exact prefix `Wal::open` recovery reports.
//! * **Compactions don't strand followers.** A follower whose cursor is
//!   behind a checkpoint's compaction restarts from the shipped
//!   checkpoint and converges.
//! * **Every published follower snapshot is a drain-prefix.** Under a
//!   live concurrent tail, a reader sampling the follower only ever
//!   observes snapshots equal to some drain boundary of the leader's
//!   history — never a partial batch.
//!
//! Property cases respect the `PROPTEST_CASES` cap for CI bounding.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use anno_mine::{IncrementalConfig, Thresholds};
use anno_service::{Dataset, ServiceError, UpdateOp};
use anno_store::{snapshot_to_string, TupleId};
use anno_wal::segment::{list_segments, segment_path};
use anno_wal::LOCK_FILE;
use proptest::prelude::*;

static CASE: AtomicUsize = AtomicUsize::new(0);

fn test_dir(tag: &str) -> PathBuf {
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("anno-replication-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config() -> IncrementalConfig {
    IncrementalConfig {
        thresholds: Thresholds::new(0.3, 0.6),
        ..Default::default()
    }
}

/// Enqueue one op and wait until it is applied — one drain per call.
fn drain(ds: &Dataset, op: UpdateOp) {
    ds.enqueue(op).unwrap();
    ds.flush().unwrap();
}

fn rows(specs: &[&str]) -> UpdateOp {
    UpdateOp::InsertRows(specs.iter().map(|s| s.to_string()).collect())
}

fn annotate(pairs: &[(u32, &str)]) -> UpdateOp {
    UpdateOp::AnnotateNamed(
        pairs
            .iter()
            .map(|&(tid, name)| (TupleId(tid), name.to_string()))
            .collect(),
    )
}

/// The state identity tests compare: the relation's exact text form plus
/// the rule count. Two datasets with equal fingerprints applied the same
/// drain prefix (interning order included — replay determinism).
fn fingerprint(ds: &Dataset) -> Option<(String, usize)> {
    ds.try_snapshot()
        .map(|s| (snapshot_to_string(s.relation()), s.rules().len()))
}

/// Copy a log directory for a reference recovery, skipping `wal.lock`:
/// the copy must look like a dead leader's directory, not like one still
/// held by this (live) process.
fn copy_log_dir(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).unwrap();
    for entry in std::fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        let name = entry.file_name();
        if name.to_str() == Some(LOCK_FILE) {
            continue;
        }
        std::fs::copy(entry.path(), to.join(&name)).unwrap();
    }
}

/// A poll interval long enough that the tail thread never fires on its
/// own — every poll in these tests is an explicit `catchup_now`, so the
/// follower's view advances only when the test says so.
const MANUAL: Duration = Duration::from_secs(3600);

/// Kill-the-leader failover: stream drains to a live leader with a
/// follower catching up mid-stream, kill the leader and tear the last
/// log frame (the torn-write shape a power loss leaves), promote — the
/// promoted follower serves exactly the committed prefix a reference
/// recovery reports, stays exact, keeps publish epochs monotone, and
/// accepts new writes.
#[test]
fn kill_the_leader_promote_serves_the_committed_prefix_and_accepts_writes() {
    let dir = test_dir("failover");
    let follower = {
        let leader = Dataset::open("db", config(), &dir).unwrap();
        drain(
            &leader,
            rows(&[
                "28 85 Annot_1",
                "28 85 Annot_1",
                "28 85 Annot_1",
                "28 85",
                "17 99",
                "17 85 Annot_2",
            ]),
        );
        leader.mine().unwrap();

        let follower = Dataset::follow("db", config(), &dir, MANUAL).unwrap();
        let st = follower.catchup_now().unwrap();
        assert_eq!(st.failed, None);
        assert_eq!(
            fingerprint(&follower),
            fingerprint(&leader),
            "caught-up follower mirrors the leader"
        );
        // While the leader lives, its wal.lock fences promotion and the
        // follower stays a follower, still serving.
        assert!(matches!(
            follower.promote(),
            Err(ServiceError::Durability(_))
        ));
        assert!(follower.try_snapshot().is_some());

        // More committed drains, follower trailing via catchup.
        drain(&leader, annotate(&[(3, "Annot_1"), (4, "Annot_2")]));
        follower.catchup_now().unwrap();
        drain(&leader, rows(&["28 85 Annot_1", "17 99 Annot_2"]));
        drain(&leader, UpdateOp::DeleteTuples(vec![TupleId(5)]));
        // The follower has NOT polled these last two drains when the
        // leader dies — failover must replay them from the log alone.
        follower
    };
    // Leader is dead (dropped above). Simulate the torn final write a
    // power loss leaves: cut the last segment mid-frame.
    let seqs = list_segments(&dir).unwrap();
    let last = segment_path(&dir, *seqs.last().unwrap());
    let len = std::fs::metadata(&last).unwrap().len();
    std::fs::OpenOptions::new()
        .write(true)
        .open(&last)
        .unwrap()
        .set_len(len - 3)
        .unwrap();

    // Reference: what a fresh recovery of this directory commits to.
    let ref_dir = test_dir("failover-ref");
    copy_log_dir(&dir, &ref_dir);
    let reference = Dataset::open("db", config(), &ref_dir).unwrap();
    assert!(reference.verify().unwrap());

    // A catchup over the torn tip is damage-tolerant: the follower stops
    // at the intact prefix and keeps serving.
    let st = follower.catchup_now().unwrap();
    assert_eq!(st.failed, None);
    let epoch_pre_promote = follower.try_snapshot().unwrap().epoch();

    follower.promote().unwrap();
    assert_eq!(follower.role(), anno_service::Role::Leader);
    assert!(follower.replication_status().is_none(), "tail loop is gone");
    assert_eq!(
        fingerprint(&follower),
        fingerprint(&reference),
        "promoted follower serves exactly the committed prefix"
    );
    assert!(follower.verify().unwrap(), "exact after failover");
    let promoted_snap = follower.try_snapshot().unwrap();
    assert!(
        promoted_snap.epoch() >= epoch_pre_promote,
        "publish epochs must not regress across promotion: {} -> {}",
        epoch_pre_promote,
        promoted_snap.epoch()
    );

    // The new leader accepts writes, durably.
    drain(&follower, annotate(&[(4, "Annot_1")]));
    let after = follower.try_snapshot().unwrap();
    assert!(after.epoch() > promoted_snap.epoch());
    assert!(follower.verify().unwrap());
    assert!(follower.is_durable());
    assert!(follower.wal_stats().unwrap().appends >= 1);

    // And the promoted state itself survives a restart.
    let final_fp = fingerprint(&follower);
    drop(follower);
    let reopened = Dataset::open("db", config(), &dir).unwrap();
    assert_eq!(fingerprint(&reopened), final_fp);
    assert!(reopened.verify().unwrap());
    drop(reopened);
    drop(reference);
    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&ref_dir).unwrap();
}

/// Checkpoint race: a follower whose cursor is behind a compaction
/// restarts from the shipped checkpoint and converges — and its restart
/// counter says so.
#[test]
fn follower_behind_a_compaction_restarts_from_the_checkpoint() {
    let dir = test_dir("ckpt-race");
    let leader = Dataset::open("db", config(), &dir).unwrap();
    drain(&leader, rows(&["28 85 Annot_1", "28 85 Annot_1", "28 85"]));
    leader.mine().unwrap();

    let follower = Dataset::follow("db", config(), &dir, MANUAL).unwrap();
    follower.catchup_now().unwrap();
    assert_eq!(fingerprint(&follower), fingerprint(&leader));

    // The leader powers ahead and checkpoints: compaction deletes the
    // sealed segments the follower's cursor sits in.
    for i in 0..12u32 {
        drain(
            &leader,
            rows(&[&format!("{} {} Annot_1", 100 + i, 200 + i)]),
        );
    }
    leader.checkpoint().unwrap();
    drain(&leader, annotate(&[(3, "Annot_1")]));

    let st = follower.catchup_now().unwrap();
    assert_eq!(st.failed, None);
    assert!(
        st.restarts >= 1,
        "cursor must have restarted from the checkpoint: {st:?}"
    );
    assert_eq!(
        fingerprint(&follower),
        fingerprint(&leader),
        "follower converges across the compaction"
    );
    assert_eq!(st.bytes_behind, 0, "fully caught up: {st:?}");

    // A second compaction cycle converges again (restart is not a
    // one-shot).
    drain(&leader, rows(&["77 88 Annot_2", "77 88 Annot_2"]));
    leader.checkpoint().unwrap();
    drain(&leader, annotate(&[(4, "Annot_1")]));
    let st = follower.catchup_now().unwrap();
    assert!(st.restarts >= 2, "{st:?}");
    assert_eq!(fingerprint(&follower), fingerprint(&leader));

    drop(leader);
    drop(follower);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Live-tail soak: with the follower polling on a short timer while the
/// leader streams drains, every snapshot a sampling reader ever observes
/// on the follower equals some drain-prefix of the leader's history.
#[test]
fn live_tail_soak_every_follower_snapshot_is_a_drain_prefix() {
    let dir = test_dir("soak");
    let leader = Dataset::open("db", config(), &dir).unwrap();
    drain(
        &leader,
        rows(&["28 85 Annot_1", "28 85 Annot_1", "28 85", "17 99"]),
    );
    leader.mine().unwrap();

    let follower = std::sync::Arc::new(
        Dataset::follow("db", config(), &dir, Duration::from_millis(1)).unwrap(),
    );

    // Sampler thread: hammer the follower's published snapshot while the
    // leader streams, collecting every distinct state observed.
    let sampler_ds = std::sync::Arc::clone(&follower);
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let sampler_stop = std::sync::Arc::clone(&stop);
    let sampler = std::thread::spawn(move || {
        let mut seen: Vec<(u64, (String, usize))> = Vec::new();
        while !sampler_stop.load(Ordering::Relaxed) {
            if let Some(snap) = sampler_ds.try_snapshot() {
                let key = snap.epoch();
                if seen.last().map(|(e, _)| *e) != Some(key) {
                    seen.push((
                        key,
                        (snapshot_to_string(snap.relation()), snap.rules().len()),
                    ));
                }
            }
            std::thread::yield_now();
        }
        seen
    });

    // Stream drains; the leader's own post-flush snapshots are exactly
    // the legal drain-prefixes.
    let mut prefixes: Vec<(String, usize)> = Vec::new();
    prefixes.push(fingerprint(&leader).unwrap());
    for i in 0..40u32 {
        let op = match i % 4 {
            0 => rows(&[&format!("{} {} Annot_1", 300 + i, 400 + i)]),
            1 => annotate(&[(i % 4, "Annot_1")]),
            2 => rows(&[&format!("{} {}", 500 + i, 600 + i)]),
            _ => annotate(&[(i % 6, "Annot_2")]),
        };
        drain(&leader, op);
        prefixes.push(fingerprint(&leader).unwrap());
        if i % 8 == 0 {
            // Give the 1ms tail a moment to interleave mid-stream.
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    // Let the tail drain fully, then stop sampling.
    let st = follower.catchup_now().unwrap();
    assert_eq!(st.failed, None);
    assert_eq!(st.bytes_behind, 0, "{st:?}");
    stop.store(true, Ordering::Relaxed);
    let samples = sampler.join().unwrap();

    assert!(
        !samples.is_empty(),
        "the sampler must have observed at least one published snapshot"
    );
    for (epoch, state) in &samples {
        assert!(
            prefixes.contains(state),
            "follower snapshot at epoch {epoch} is not any drain-prefix of the leader \
             ({} prefixes, {} samples)",
            prefixes.len(),
            samples.len()
        );
    }
    // Sampled epochs are strictly monotone — published time never runs
    // backwards under the live tail.
    for pair in samples.windows(2) {
        assert!(pair[0].0 < pair[1].0, "epoch regressed: {pair:?}");
    }
    assert_eq!(fingerprint(&follower), fingerprint(&leader));

    drop(leader);
    drop(follower);
    std::fs::remove_dir_all(&dir).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Crash injection: damage the leader's log at an arbitrary byte
    /// (bit flip or truncation). The prefix a tailing follower converges
    /// to is the same exact prefix `Wal::open` recovery reports — and
    /// promotion of that follower lands on it too.
    #[test]
    fn follower_and_recovery_agree_on_the_damaged_prefix(
        drain_specs in proptest::collection::vec(0u32..64, 2..10),
        mine_at in 0usize..4,
        checkpoint_pick in 0usize..9,
        damage_seed in 0u64..u64::MAX,
        flip in any::<bool>(),
    ) {
        let dir = test_dir("crash");
        let mine_at = mine_at.min(drain_specs.len() - 1);
        // 0 means "no mid-stream checkpoint".
        let checkpoint_at = (checkpoint_pick > 0).then_some(checkpoint_pick);
        // Build the committed log: flushed single-op drains, a mine
        // mid-stream, an optional checkpoint (compaction) mid-stream.
        {
            let leader = Dataset::open("db", config(), &dir).unwrap();
            for (i, &spec) in drain_specs.iter().enumerate() {
                if i == mine_at {
                    leader.mine().unwrap();
                }
                if checkpoint_at == Some(i) && i > mine_at {
                    leader.checkpoint().unwrap();
                }
                let op = match spec % 3 {
                    0 => rows(&[&format!("{} {} Annot_1", 10 + spec, 90 + spec)]),
                    1 => rows(&[&format!("{} {}", 10 + spec, 90 + spec)]),
                    _ => annotate(&[(spec % 4, "Annot_1")]),
                };
                drain(&leader, op);
            }
        }
        // Damage one arbitrary byte across the segment files.
        let seqs = list_segments(&dir).unwrap();
        let sizes: Vec<u64> = seqs
            .iter()
            .map(|&s| std::fs::metadata(segment_path(&dir, s)).unwrap().len())
            .collect();
        let total: u64 = sizes.iter().sum();
        let mut at = damage_seed % total;
        let mut victim = 0usize;
        while at >= sizes[victim] {
            at -= sizes[victim];
            victim += 1;
        }
        let path = segment_path(&dir, seqs[victim]);
        if flip {
            let mut bytes = std::fs::read(&path).unwrap();
            bytes[at as usize] ^= 0x40;
            std::fs::write(&path, &bytes).unwrap();
        } else {
            std::fs::OpenOptions::new()
                .write(true)
                .open(&path)
                .unwrap()
                .set_len(at)
                .unwrap();
        }

        // Reference: the exact prefix leader-side recovery commits to.
        let ref_dir = test_dir("crash-ref");
        copy_log_dir(&dir, &ref_dir);
        let reference = Dataset::open("db", config(), &ref_dir).unwrap();

        // Follower: tail the damaged directory from scratch.
        let follower = Dataset::follow("db", config(), &dir, MANUAL).unwrap();
        let st = follower.catchup_now().unwrap();
        prop_assert!(st.failed.is_none(), "damage must read as lag, not failure: {:?}", st);
        prop_assert_eq!(
            follower.is_mined(),
            reference.is_mined(),
            "mine visibility must match recovery's prefix"
        );
        prop_assert_eq!(
            fingerprint(&follower),
            fingerprint(&reference),
            "follower replay and leader recovery must agree on the exact prefix"
        );
        if reference.is_mined() {
            prop_assert!(reference.verify().unwrap());
        }

        // Promotion re-recovers the same directory: same prefix again,
        // now writable.
        follower.promote().unwrap();
        prop_assert_eq!(fingerprint(&follower), fingerprint(&reference));
        if follower.is_mined() {
            prop_assert!(follower.verify().unwrap());
            drain(&follower, rows(&["7777 8888 Annot_1"]));
            prop_assert!(follower.verify().unwrap());
        }

        drop(follower);
        drop(reference);
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&ref_dir).ok();
    }
}
