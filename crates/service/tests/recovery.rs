//! Durability suite: kill/restart round-trips and service-level crash
//! injection over the write-ahead log.
//!
//! The contract under test (ISSUE 3 acceptance): a dataset opened with a
//! durability directory survives process restart — recovery restores the
//! latest checkpoint, replays the log tail through the incremental miner,
//! `verify_against_remine` holds on the recovered state, the published
//! relation epoch never regresses (it *matches* the pre-crash epoch when
//! the log is intact), and a damaged log tail recovers cleanly to the
//! exact state after some prefix of the committed drains.
//!
//! Property cases respect the `PROPTEST_CASES` cap for CI bounding.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use anno_mine::{IncrementalConfig, Thresholds};
use anno_service::{Dataset, ServiceError, UpdateOp};
use anno_store::{snapshot_to_string, TupleId};
use anno_wal::segment::{list_segments, segment_path};
use proptest::prelude::*;

static CASE: AtomicUsize = AtomicUsize::new(0);

fn test_dir(tag: &str) -> PathBuf {
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("anno-recovery-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config() -> IncrementalConfig {
    IncrementalConfig {
        thresholds: Thresholds::new(0.3, 0.6),
        ..Default::default()
    }
}

/// Enqueue one op and wait until its snapshot is published — one drain.
fn drain(ds: &Dataset, op: UpdateOp) {
    ds.enqueue(op).unwrap();
    ds.flush().unwrap();
}

fn rows(specs: &[&str]) -> UpdateOp {
    UpdateOp::InsertRows(specs.iter().map(|s| s.to_string()).collect())
}

fn annotate(pairs: &[(u32, &str)]) -> UpdateOp {
    UpdateOp::AnnotateNamed(
        pairs
            .iter()
            .map(|&(tid, name)| (TupleId(tid), name.to_string()))
            .collect(),
    )
}

/// The full lifecycle the ISSUE acceptance names: N mixed drains, a
/// checkpoint mid-stream, more drains, kill (drop), reopen from disk —
/// then `verify_against_remine` holds and the published relation epoch
/// matches the pre-crash one exactly.
#[test]
fn kill_restart_round_trip_with_mid_stream_checkpoint() {
    let dir = test_dir("round-trip");
    let (epoch_before, text_before, rules_before);
    {
        let ds = Dataset::open("db", config(), &dir).unwrap();
        // Mixed drain stream, each flushed to force a separate drain.
        drain(
            &ds,
            rows(&[
                "28 85 Annot_1",
                "28 85 Annot_1",
                "28 85 Annot_1",
                "28 85",
                "17 99",
                "17 85 Annot_2",
            ]),
        );
        drain(&ds, annotate(&[(3, "Annot_1"), (4, "Annot_2")]));
        drain(&ds, rows(&["28 99", "17 99 Annot_2"]));
        ds.mine().unwrap();
        drain(&ds, annotate(&[(6, "Annot_1")]));
        drain(
            &ds,
            UpdateOp::RemoveNamed(vec![(TupleId(4), "Annot_2".into())]),
        );

        // Checkpoint mid-stream: everything above compacts away.
        ds.checkpoint().unwrap();

        drain(&ds, rows(&["28 85 Annot_1", "11 12"]));
        drain(&ds, UpdateOp::DeleteTuples(vec![TupleId(1), TupleId(7)]));
        drain(&ds, annotate(&[(8, "Annot_1"), (9, "Annot_2")]));

        assert!(ds.verify().unwrap(), "pre-crash state is exact");
        let snap = ds.snapshot().unwrap();
        epoch_before = snap.relation_epoch();
        text_before = snapshot_to_string(snap.relation());
        rules_before = snap.rules().len();
        // Dropped here: the writer stops — the "kill".
    }

    let ds = Dataset::open("db", config(), &dir).unwrap();
    let stats = ds.wal_stats().unwrap();
    assert_eq!(
        stats.replayed_records, 3,
        "exactly the post-checkpoint drains replay: {stats:?}"
    );
    assert!(
        ds.verify().unwrap(),
        "recovered state passes verify_against_remine"
    );
    let snap = ds.snapshot().unwrap();
    assert_eq!(
        snap.relation_epoch(),
        epoch_before,
        "published relation epoch matches the pre-crash epoch"
    );
    assert_eq!(snapshot_to_string(snap.relation()), text_before);
    assert_eq!(snap.rules().len(), rules_before);
    drop(ds);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A second restart without any intervening writes must be a fixpoint,
/// and epochs never regress across any number of restarts.
#[test]
fn repeated_reopens_are_a_fixpoint_and_epochs_never_regress() {
    let dir = test_dir("fixpoint");
    {
        let ds = Dataset::open("db", config(), &dir).unwrap();
        drain(&ds, rows(&["1 2 X", "1 2 X", "1 3"]));
        ds.mine().unwrap();
        drain(&ds, annotate(&[(2, "X")]));
    }
    let mut last_epoch = 0;
    let mut last_snap_epoch = 0;
    let mut last_text = String::new();
    for round in 0..3 {
        let ds = Dataset::open("db", config(), &dir).unwrap();
        let snap = ds.snapshot().unwrap();
        assert!(
            snap.relation_epoch() >= last_epoch,
            "epoch regressed on reopen {round}"
        );
        assert!(
            snap.epoch() >= last_snap_epoch,
            "snapshot (publish) epoch regressed on reopen {round}: {} -> {}",
            last_snap_epoch,
            snap.epoch()
        );
        if round > 0 {
            assert_eq!(snap.relation_epoch(), last_epoch, "reopen is a fixpoint");
            assert_eq!(snapshot_to_string(snap.relation()), last_text);
        }
        last_epoch = snap.relation_epoch();
        last_snap_epoch = snap.epoch();
        last_text = snapshot_to_string(snap.relation());
        assert!(ds.verify().unwrap());
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Tearing the log mid-record (the classic crash-during-append) recovers
/// cleanly to the last intact drain; a tear that clips the `mine` record
/// itself degrades to a loaded-but-unmined dataset, never a corrupt one.
#[test]
fn torn_tail_recovers_to_last_intact_drain() {
    let dir = test_dir("torn");
    {
        let ds = Dataset::open("db", config(), &dir).unwrap();
        drain(&ds, rows(&["1 2 X", "1 2 X", "1 3"]));
        ds.mine().unwrap();
    }
    // Clip the tail: the mine record (last in the log) loses 2 bytes.
    let seqs = list_segments(&dir).unwrap();
    let path = segment_path(&dir, *seqs.last().unwrap());
    let len = std::fs::metadata(&path).unwrap().len();
    std::fs::OpenOptions::new()
        .write(true)
        .open(&path)
        .unwrap()
        .set_len(len - 2)
        .unwrap();

    let ds = Dataset::open("db", config(), &dir).unwrap();
    assert_eq!(ds.wal_stats().unwrap().damaged_tails, 1);
    assert!(!ds.is_mined(), "clipped mine record degrades to unmined");
    assert_eq!(ds.live_tuples(), 3, "the insert drain before it survived");
    assert!(matches!(ds.snapshot(), Err(ServiceError::NotMined(_))));
    // The dataset is fully operational: mine again and keep going.
    let snap = ds.mine().unwrap();
    assert_eq!(snap.db_size(), 3);
    assert!(ds.verify().unwrap());
    drop(ds);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Two live datasets must never share a durability directory: the second
/// open is refused while the first holds the wal lock, and succeeds once
/// it is gone.
#[test]
fn a_live_durability_directory_cannot_be_opened_twice() {
    let dir = test_dir("double-open");
    let ds = Dataset::open("a", config(), &dir).unwrap();
    drain(&ds, rows(&["1 2 X"]));
    match Dataset::open("b", config(), &dir) {
        Err(ServiceError::Durability(msg)) => assert!(msg.contains("locked"), "{msg}"),
        other => panic!("second open must be refused, got {other:?}"),
    }
    drop(ds);
    let ds = Dataset::open("b", config(), &dir).unwrap();
    assert_eq!(ds.live_tuples(), 1, "state recovered under the new name");
    drop(ds);
    std::fs::remove_dir_all(&dir).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    /// Crash injection end to end: after a checkpointed mine, commit a
    /// random stream of drains, damage the WAL at an arbitrary byte
    /// (truncate or bit-flip), reopen, and require the recovered dataset
    /// to be byte-identical to the state after some exact prefix of the
    /// committed drains — with the matching epoch, passing a full
    /// verify_against_remine, and never fatal.
    #[test]
    fn damaged_wal_recovers_an_exact_drain_prefix(
        drain_specs in proptest::collection::vec(
            (0u8..4, 0u32..24, 0u32..6), 1..10),
        damage_seed in 0u64..u64::MAX,
        flip in proptest::prelude::any::<bool>(),
    ) {
        let dir = test_dir("crash");
        // (snapshot text, relation epoch) after the checkpoint and after
        // each committed drain: recovery must land exactly on one of
        // these.
        let mut states: Vec<(String, u64)> = Vec::new();
        {
            let ds = Dataset::open("db", config(), &dir).unwrap();
            drain(&ds, rows(&[
                "1 2 A0", "1 2 A0", "1 3 A1", "2 3", "2 4 A1", "5 6",
            ]));
            ds.mine().unwrap();
            ds.checkpoint().unwrap();
            let record = |states: &mut Vec<(String, u64)>| {
                let snap = ds.try_snapshot().unwrap();
                states.push((snapshot_to_string(snap.relation()), snap.relation_epoch()));
            };
            record(&mut states);
            for &(kind, a, b) in &drain_specs {
                let op = match kind {
                    0 => rows(&[&format!("{} {} A{b}", a % 9, a % 7)]),
                    1 => annotate(&[(a, "A0"), (a / 2, &format!("A{b}"))]),
                    2 => UpdateOp::RemoveNamed(vec![(TupleId(a), format!("A{b}"))]),
                    _ => UpdateOp::DeleteTuples(vec![TupleId(a)]),
                };
                drain(&ds, op);
                record(&mut states);
            }
            prop_assert!(ds.verify().unwrap());
        }

        // Damage one arbitrary byte of the (post-checkpoint) log.
        let seqs = list_segments(&dir).unwrap();
        let sizes: Vec<u64> = seqs
            .iter()
            .map(|&s| std::fs::metadata(segment_path(&dir, s)).unwrap().len())
            .collect();
        let total: u64 = sizes.iter().sum();
        let mut at = damage_seed % total;
        let mut victim = 0usize;
        while at >= sizes[victim] {
            at -= sizes[victim];
            victim += 1;
        }
        let path = segment_path(&dir, seqs[victim]);
        if flip {
            let mut bytes = std::fs::read(&path).unwrap();
            bytes[at as usize] ^= 0x20;
            std::fs::write(&path, &bytes).unwrap();
        } else {
            std::fs::OpenOptions::new()
                .write(true)
                .open(&path)
                .unwrap()
                .set_len(at)
                .unwrap();
        }

        // Recover. The checkpointed mine always survives (only segment
        // files were damaged), so the dataset comes back mined.
        let ds = Dataset::open("db", config(), &dir).unwrap();
        let snap = ds.snapshot().unwrap();
        let text = snapshot_to_string(snap.relation());
        let hit = states.iter().position(|(s, _)| *s == text);
        prop_assert!(
            hit.is_some(),
            "recovered state must equal some committed drain prefix"
        );
        prop_assert_eq!(
            snap.relation_epoch(),
            states[hit.unwrap()].1,
            "epoch must match the recovered prefix"
        );
        prop_assert!(ds.verify().unwrap(), "recovered state stays exact");
        drop(ds);
        std::fs::remove_dir_all(&dir).ok();
    }
}
