//! WAL maintenance-layer suite (ISSUE 5): automatic checkpoint policy,
//! cross-dataset group commit, and the write-path fixes that make the
//! policy safe to run unattended.
//!
//! The contracts under test:
//!
//! * an auto-checkpoint firing at *any* drain index is recovery-
//!   transparent — recovered state (snapshot text, epoch, exactness) is
//!   identical to a dataset that never checkpointed, and byte-identical
//!   to one that checkpointed manually at the same index — including
//!   when a crash lands mid-checkpoint;
//! * K durable datasets sharing one [`GroupCommitter`] each recover
//!   their full flush-acknowledged prefix after kill/restart;
//! * a within-batch duplicate `(tuple, annotation)` pair is logged once,
//!   not twice (the regression the batch dedupe fixes);
//! * an unloggable `mine` fences the dataset exactly like an unloggable
//!   drain does.
//!
//! Property cases respect the `PROPTEST_CASES` cap for CI bounding.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use anno_mine::{IncrementalConfig, Thresholds};
use anno_service::{
    CheckpointPolicy, Dataset, DurabilityOptions, GroupCommitter, ServiceError, SyncPolicy,
    UpdateOp,
};
use anno_store::{snapshot_to_string, TupleId};
use anno_wal::WalOptions;
use proptest::prelude::*;

static CASE: AtomicUsize = AtomicUsize::new(0);

fn test_dir(tag: &str) -> PathBuf {
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("anno-maintenance-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config() -> IncrementalConfig {
    IncrementalConfig {
        thresholds: Thresholds::new(0.3, 0.6),
        ..Default::default()
    }
}

fn drain(ds: &Dataset, op: UpdateOp) {
    ds.enqueue(op).unwrap();
    ds.flush().unwrap();
}

fn rows(specs: &[&str]) -> UpdateOp {
    UpdateOp::InsertRows(specs.iter().map(|s| s.to_string()).collect())
}

fn annotate(pairs: &[(u32, &str)]) -> UpdateOp {
    UpdateOp::AnnotateNamed(
        pairs
            .iter()
            .map(|&(tid, name)| (TupleId(tid), name.to_string()))
            .collect(),
    )
}

fn policy_records(n: u64) -> DurabilityOptions {
    DurabilityOptions {
        auto_checkpoint: CheckpointPolicy {
            replayed_records: Some(n),
            ..Default::default()
        },
        ..Default::default()
    }
}

/// The same mixed drain script against any dataset, so policy-on,
/// policy-off, and manual-checkpoint runs are byte-comparable.
fn run_script(ds: &Dataset) {
    drain(
        ds,
        rows(&["1 2 A0", "1 2 A0", "1 3 A1", "2 3", "2 4 A1", "5 6"]),
    );
    ds.mine().unwrap();
    drain(ds, annotate(&[(3, "A0"), (5, "A1")]));
    drain(ds, rows(&["2 3 A0", "7 8"]));
    drain(ds, UpdateOp::RemoveNamed(vec![(TupleId(4), "A1".into())]));
    drain(ds, UpdateOp::DeleteTuples(vec![TupleId(1)]));
    drain(ds, annotate(&[(6, "A1")]));
}

#[test]
fn auto_checkpoint_fires_bounds_replay_and_survives_reopen() {
    let dir = test_dir("auto-fires");
    let text_before;
    let epoch_before;
    {
        // Fire once the log holds 4 records. The script appends
        // 1 (mine) + 6 drains; the policy triggers at the 4th append and
        // accumulates 3 more records afterwards.
        let ds = Dataset::open_with("db", config(), &dir, policy_records(4)).unwrap();
        run_script(&ds);
        ds.quiesce_maintenance();
        let m = ds.metrics();
        assert_eq!(m.auto_checkpoints, 1, "policy fired exactly once: {m:?}");
        assert_eq!(m.checkpoints, 1, "auto checkpoints count as checkpoints");
        let ws = ds.wal_stats().unwrap();
        assert_eq!(
            ws.since_checkpoint_records, 3,
            "post-checkpoint accumulation restarts: {ws:?}"
        );
        assert_eq!(ws.checkpoints, 1);
        let snap = ds.snapshot().unwrap();
        text_before = snapshot_to_string(snap.relation());
        epoch_before = snap.relation_epoch();
    }
    // Recovery replays only what the policy left uncompacted.
    let ds = Dataset::open_with("db", config(), &dir, policy_records(4)).unwrap();
    let ws = ds.wal_stats().unwrap();
    assert_eq!(
        ws.replayed_records, 3,
        "replay bounded by the policy: {ws:?}"
    );
    let snap = ds.snapshot().unwrap();
    assert_eq!(snapshot_to_string(snap.relation()), text_before);
    assert_eq!(snap.relation_epoch(), epoch_before);
    assert!(ds.verify().unwrap());
    drop(ds);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The acceptance pin: an auto-checkpoint and a manual checkpoint at the
/// same drain index leave byte-identical durable state — same
/// `checkpoint.bin`, same recovered snapshot — and a crash landing in
/// the middle of the *next* checkpoint attempt (a torn `checkpoint.tmp`,
/// exactly what a mid-rename kill leaves) recovers both the same way.
#[test]
fn crash_mid_auto_checkpoint_recovers_byte_identically_to_manual() {
    let auto_dir = test_dir("mid-ckpt-auto");
    let manual_dir = test_dir("mid-ckpt-manual");
    {
        // Policy fires at the 4th append: mine + 3 drains.
        let ds = Dataset::open_with("db", config(), &auto_dir, policy_records(4)).unwrap();
        drain(
            &ds,
            rows(&["1 2 A0", "1 2 A0", "1 3 A1", "2 3", "2 4 A1", "5 6"]),
        );
        ds.mine().unwrap();
        drain(&ds, annotate(&[(3, "A0"), (5, "A1")]));
        drain(&ds, rows(&["2 3 A0", "7 8"]));
        ds.quiesce_maintenance();
        assert_eq!(ds.metrics().auto_checkpoints, 1);
        // One more drain past the checkpoint, then "crash".
        drain(&ds, annotate(&[(6, "A1")]));
    }
    {
        // Same script; the operator checkpoints by hand at the same index.
        let ds =
            Dataset::open_with("db", config(), &manual_dir, DurabilityOptions::default()).unwrap();
        drain(
            &ds,
            rows(&["1 2 A0", "1 2 A0", "1 3 A1", "2 3", "2 4 A1", "5 6"]),
        );
        ds.mine().unwrap();
        drain(&ds, annotate(&[(3, "A0"), (5, "A1")]));
        drain(&ds, rows(&["2 3 A0", "7 8"]));
        ds.checkpoint().unwrap();
        assert_eq!(ds.metrics().auto_checkpoints, 0);
        drain(&ds, annotate(&[(6, "A1")]));
    }
    // Both paths funnel through the same checkpoint writer; the durable
    // artifact must be byte-identical (same payload, same log position,
    // same persisted publish sequence).
    let auto_ckpt = std::fs::read(auto_dir.join("checkpoint.bin")).unwrap();
    let manual_ckpt = std::fs::read(manual_dir.join("checkpoint.bin")).unwrap();
    assert_eq!(
        auto_ckpt, manual_ckpt,
        "auto and manual checkpoints at the same index must be byte-identical"
    );
    // Crash mid-checkpoint: the staging file was being written when the
    // process died. Inject the same torn tmp into both directories.
    std::fs::write(auto_dir.join("checkpoint.tmp"), b"torn half-written ch").unwrap();
    std::fs::write(manual_dir.join("checkpoint.tmp"), b"torn half-written ch").unwrap();

    let auto = Dataset::open("db", config(), &auto_dir).unwrap();
    let manual = Dataset::open("db", config(), &manual_dir).unwrap();
    let snap_auto = auto.snapshot().unwrap();
    let snap_manual = manual.snapshot().unwrap();
    assert_eq!(
        snapshot_to_string(snap_auto.relation()),
        snapshot_to_string(snap_manual.relation()),
        "recovery after a mid-checkpoint crash is identical for both"
    );
    assert_eq!(snap_auto.relation_epoch(), snap_manual.relation_epoch());
    assert_eq!(snap_auto.epoch(), snap_manual.epoch(), "publish epochs too");
    assert_eq!(
        auto.wal_stats().unwrap().replayed_records,
        manual.wal_stats().unwrap().replayed_records,
    );
    assert!(auto.verify().unwrap() && manual.verify().unwrap());
    drop((auto, manual));
    std::fs::remove_dir_all(&auto_dir).unwrap();
    std::fs::remove_dir_all(&manual_dir).unwrap();
}

/// K durable tenants over one shared committer, written concurrently,
/// killed, reopened: every dataset recovers exactly its acknowledged
/// writes (flush barriers release only after the shared sync window
/// closes, so "flushed" must always mean "recoverable").
#[test]
fn grouped_tenants_each_recover_their_committed_prefix_after_kill() {
    const TENANTS: usize = 4;
    const ROUNDS: u32 = 8;
    let committer = Arc::new(GroupCommitter::with_window(Duration::from_micros(300)));
    let dirs: Vec<PathBuf> = (0..TENANTS)
        .map(|i| test_dir(&format!("grouped-{i}")))
        .collect();
    let mut expected: Vec<(String, u64)> = Vec::new();
    {
        let datasets: Vec<Dataset> = dirs
            .iter()
            .map(|dir| {
                let options = DurabilityOptions {
                    wal: WalOptions {
                        sync: SyncPolicy::Grouped(Arc::clone(&committer)),
                        ..WalOptions::default()
                    },
                    ..Default::default()
                };
                Dataset::open_with("db", config(), dir, options).unwrap()
            })
            .collect();
        std::thread::scope(|s| {
            for (t, ds) in datasets.iter().enumerate() {
                s.spawn(move || {
                    drain(ds, rows(&["1 2 A0", "1 2 A0", "1 3 A1", "2 3", "5 6"]));
                    ds.mine().unwrap();
                    for round in 0..ROUNDS {
                        // Tenant-distinct streams: fresh rows and toggled
                        // annotations, every drain effective.
                        let op = if round % 2 == 0 {
                            rows(&[&format!("{} {} A{}", t + 3, round + 10, t)])
                        } else {
                            annotate(&[(round, "A0")])
                        };
                        drain(ds, op);
                    }
                });
            }
        });
        // Every effective append (seed drain, mine, and at least the four
        // fresh-row drains per tenant) went through the shared committer;
        // odd rounds may fold to no-ops and are rightly never logged.
        let stats = committer.stats();
        assert!(
            stats.submitted >= (TENANTS as u64) * 6,
            "effective drains must flow through the committer: {stats:?}"
        );
        for ds in &datasets {
            assert!(ds.verify().unwrap());
            let snap = ds.snapshot().unwrap();
            expected.push((snapshot_to_string(snap.relation()), snap.relation_epoch()));
        }
        // Dropped here: all four writers stop — the "kill".
    }
    for (dir, (text, epoch)) in dirs.iter().zip(&expected) {
        let ds = Dataset::open("db", config(), dir).unwrap();
        let snap = ds.snapshot().unwrap();
        assert_eq!(&snapshot_to_string(snap.relation()), text);
        assert_eq!(snap.relation_epoch(), *epoch);
        assert!(ds.verify().unwrap());
        drop(ds);
        std::fs::remove_dir_all(dir).unwrap();
    }
}

/// The dedupe regression (ISSUE 5 satellite): a duplicated
/// `(tuple, annotation)` pair inside one coalesced drain — what two
/// clients annotating the same thing in the same drain window produce —
/// must reach the log exactly once. Pre-dedupe, the echo was logged,
/// replayed, and pushed through maintenance on every recovery; the two
/// datasets below diverged by the duplicate's log bytes.
#[test]
fn duplicated_annotate_pair_in_one_drain_is_logged_once() {
    let dup_dir = test_dir("dup-pair");
    let single_dir = test_dir("single-pair");
    let seed = ["1 2 A0", "1 2 A0", "1 3", "2 4"];
    let open = |dir: &PathBuf| {
        let ds = Dataset::open("db", config(), dir).unwrap();
        drain(&ds, rows(&seed));
        ds.mine().unwrap();
        ds
    };
    let dup = open(&dup_dir);
    let single = open(&single_dir);
    // One coalesced drain whose batch carries the pair twice vs. once.
    drain(&dup, annotate(&[(2, "A0"), (2, "A0")]));
    drain(&single, annotate(&[(2, "A0")]));

    let dup_ws = dup.wal_stats().unwrap();
    let single_ws = single.wal_stats().unwrap();
    assert_eq!(dup_ws.appends, single_ws.appends);
    assert_eq!(
        dup_ws.appended_bytes, single_ws.appended_bytes,
        "the duplicate update must not reach the log: {dup_ws:?} vs {single_ws:?}"
    );
    let snap = dup.snapshot().unwrap();
    assert_eq!(
        snap.relation()
            .tuple(TupleId(2))
            .unwrap()
            .annotations()
            .len(),
        1,
        "exactly one annotation lands"
    );
    assert_eq!(
        snapshot_to_string(snap.relation()),
        snapshot_to_string(single.snapshot().unwrap().relation()),
    );
    assert!(dup.verify().unwrap());
    // And the deduped log replays to the same state.
    drop((dup, single));
    let dup = Dataset::open("db", config(), &dup_dir).unwrap();
    assert_eq!(
        dup.snapshot()
            .unwrap()
            .relation()
            .tuple(TupleId(2))
            .unwrap()
            .annotations()
            .len(),
        1
    );
    assert!(dup.verify().unwrap());
    drop(dup);
    std::fs::remove_dir_all(&dup_dir).unwrap();
    std::fs::remove_dir_all(&single_dir).unwrap();
}

/// Unified failure policy (ISSUE 5 satellite): a `mine` whose WAL append
/// fails must fence the dataset — exactly what the writer does to an
/// unloggable drain — not return an error and keep serving, or the served
/// rule set would diverge from what a restart recovers.
#[test]
fn unloggable_mine_fences_the_dataset_like_an_unloggable_drain() {
    let dir = test_dir("mine-fence");
    // Tiny segments so the mine record's append must roll into a fresh
    // segment file — which fails once the directory is gone.
    let options = DurabilityOptions {
        wal: WalOptions {
            segment_bytes: 64,
            ..WalOptions::default()
        },
        ..Default::default()
    };
    let ds = Dataset::open_with("db", config(), &dir, options).unwrap();
    drain(&ds, rows(&["1 2 A0", "1 2 A0", "1 3"]));
    std::fs::remove_dir_all(&dir).unwrap();
    match ds.mine() {
        Err(ServiceError::Durability(_)) => {}
        other => panic!("unloggable mine must fail as a durability error, got {other:?}"),
    }
    assert!(
        matches!(ds.enqueue(rows(&["9 9"])), Err(ServiceError::ShutDown(_))),
        "the dataset must be fenced after an unloggable mine"
    );
    // No accepted work is outstanding, so the flush barrier is vacuously
    // satisfied — but re-mining a fenced dataset is refused outright.
    assert!(ds.flush().is_ok());
    assert!(matches!(ds.mine(), Err(ServiceError::ShutDown(_))));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    /// Recovery transparency: a policy firing at an arbitrary drain index
    /// never changes what a kill/restart recovers. The policy-driven
    /// dataset and a never-checkpointing twin run the same drain script;
    /// after reopen both must hold byte-identical snapshots, matching
    /// epochs, and pass `verify_against_remine`.
    #[test]
    fn auto_checkpoint_at_any_drain_index_is_recovery_transparent(
        trigger in 1u64..10,
        drain_specs in proptest::collection::vec((0u8..4, 0u32..24, 0u32..6), 1..8),
    ) {
        let auto_dir = test_dir("transparent-auto");
        let plain_dir = test_dir("transparent-plain");
        let script = |ds: &Dataset| {
            drain(ds, rows(&["1 2 A0", "1 2 A0", "1 3 A1", "2 3", "2 4 A1", "5 6"]));
            ds.mine().unwrap();
            for &(kind, a, b) in &drain_specs {
                let op = match kind {
                    0 => rows(&[&format!("{} {} A{b}", a % 9, a % 7)]),
                    1 => annotate(&[(a, "A0"), (a / 2, &format!("A{b}"))]),
                    2 => UpdateOp::RemoveNamed(vec![(TupleId(a), format!("A{b}"))]),
                    _ => UpdateOp::DeleteTuples(vec![TupleId(a)]),
                };
                drain(ds, op);
            }
        };
        let fired = {
            let ds = Dataset::open_with("db", config(), &auto_dir, policy_records(trigger)).unwrap();
            script(&ds);
            ds.quiesce_maintenance();
            ds.metrics().auto_checkpoints
        };
        {
            let ds = Dataset::open_with("db", config(), &plain_dir, DurabilityOptions::default())
                .unwrap();
            script(&ds);
        }
        let auto = Dataset::open("db", config(), &auto_dir).unwrap();
        let plain = Dataset::open("db", config(), &plain_dir).unwrap();
        let snap_auto = auto.snapshot().unwrap();
        let snap_plain = plain.snapshot().unwrap();
        prop_assert_eq!(
            snapshot_to_string(snap_auto.relation()),
            snapshot_to_string(snap_plain.relation()),
            "checkpointing must never change recovered state"
        );
        prop_assert_eq!(snap_auto.relation_epoch(), snap_plain.relation_epoch());
        prop_assert!(auto.verify().unwrap());
        prop_assert!(plain.verify().unwrap());
        // The lowest trigger always fires on the seed drain: transparency
        // above is never vacuous.
        if trigger == 1 {
            prop_assert!(fired >= 1, "policy at trigger=1 must have fired");
        }
        drop((auto, plain));
        std::fs::remove_dir_all(&auto_dir).ok();
        std::fs::remove_dir_all(&plain_dir).ok();
    }
}
