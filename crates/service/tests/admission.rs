//! Admission-control and QoS behavior: queue-full shed vs. blocking
//! backpressure, bulk-flood isolation of interactive tenants, and
//! hostile slow-loris clients against the sharded reactor front end.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use anno_service::queue::{QosClass, UpdateOp};
use anno_service::server::serve_listener_sharded;
use anno_service::{Engine, Service, ServiceConfig, ServiceError};

fn rows(n: usize) -> UpdateOp {
    UpdateOp::InsertRows((0..n).map(|i| format!("{i} {} A", i + 1)).collect())
}

/// Start a sharded server over a shared registry; returns the registry
/// (for direct dataset handles) and the address.
fn start_sharded(shards: usize) -> (Arc<Service>, SocketAddr) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().unwrap();
    let service = Arc::new(Service::new());
    let serve = Arc::clone(&service);
    std::thread::spawn(move || serve_listener_sharded(serve, listener, shards));
    (service, addr)
}

/// A line-protocol client over real TCP.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect loopback");
        // Commands go out as several small writes; without nodelay,
        // Nagle + delayed ACK turns every round trip into ~40ms.
        stream.set_nodelay(true).expect("nodelay");
        let writer = stream.try_clone().unwrap();
        let mut client = Client {
            writer,
            reader: BufReader::new(stream),
        };
        let banner = client.read_line();
        assert!(banner.starts_with("OK annod ready"), "{banner}");
        client
    }

    fn read_line(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read reply");
        line
    }

    /// Send one command, read its single-line reply.
    fn cmd(&mut self, line: &str) -> String {
        writeln!(self.writer, "{line}").expect("send command");
        self.read_line()
    }

    /// Send one command, read a block reply (through the `.` terminator).
    fn cmd_block(&mut self, line: &str) -> Vec<String> {
        writeln!(self.writer, "{line}").expect("send command");
        let mut block = Vec::new();
        loop {
            let reply = self.read_line();
            let done = reply.trim_end() == ".";
            block.push(reply);
            if done {
                return block;
            }
        }
    }
}

#[test]
fn try_enqueue_sheds_with_typed_overloaded_when_full() {
    let service = Service::new();
    let ds = service.create("db", ServiceConfig::default()).unwrap();
    ds.pause_writer_for_tests(true);
    ds.set_queue_cap(8);

    // An empty queue admits anything, even past the cap's granularity.
    ds.try_enqueue(rows(4)).unwrap();
    // Still room: 4 + 4 <= 8.
    ds.try_enqueue(rows(4)).unwrap();
    // Full: the shed is immediate, typed, and counted.
    let err = ds.try_enqueue(rows(1)).unwrap_err();
    match &err {
        ServiceError::Overloaded {
            dataset,
            pending,
            cap,
        } => {
            assert_eq!(dataset, "db");
            assert_eq!((*pending, *cap), (8, 8));
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }
    assert!(err.to_string().contains("overloaded"), "{err}");
    assert!(ds.overloaded());
    assert!(!ds.admission_ready());
    assert_eq!(ds.metrics().admission_shed, 1);
    assert_eq!(ds.observability().queue_depth, 8);

    // Draining restores admission with hysteresis headroom.
    ds.pause_writer_for_tests(false);
    ds.flush().unwrap();
    assert!(!ds.overloaded());
    assert!(ds.admission_ready());
    ds.try_enqueue(rows(1)).unwrap();
    ds.flush().unwrap();
}

#[test]
fn blocking_enqueue_still_waits_out_backpressure() {
    let service = Service::new();
    let ds = service.create("db", ServiceConfig::default()).unwrap();
    ds.pause_writer_for_tests(true);
    ds.set_queue_cap(4);
    ds.enqueue(rows(4)).unwrap();

    let blocked = Arc::new(AtomicBool::new(false));
    let handle = {
        let ds = ds.clone();
        let blocked = Arc::clone(&blocked);
        std::thread::spawn(move || {
            let seq = ds.enqueue(rows(2)).unwrap();
            blocked.store(true, Ordering::SeqCst);
            seq
        })
    };
    // The embedder path parks on the condvar instead of shedding.
    std::thread::sleep(Duration::from_millis(100));
    assert!(!blocked.load(Ordering::SeqCst), "enqueue should be parked");

    ds.pause_writer_for_tests(false);
    handle
        .join()
        .expect("blocked enqueue completes after drain");
    ds.flush().unwrap();
    assert_eq!(ds.metrics().admission_shed, 0);
}

#[test]
fn class_verb_reclassifies_and_stats_report_it() {
    let service = Arc::new(Service::new());
    let engine = Engine::new(Arc::clone(&service));
    let open = engine.execute("open db 0.4 0.7");
    assert!(open.lines[0].starts_with("OK"), "{:?}", open.lines);

    let report = engine.execute("class db");
    assert!(
        report.lines[0].starts_with("OK class db interactive cap="),
        "{:?}",
        report.lines
    );
    let set = engine.execute("class db bulk");
    assert!(
        set.lines[0].starts_with("OK class db bulk"),
        "{:?}",
        set.lines
    );
    assert_eq!(service.get("db").unwrap().qos_class(), QosClass::Bulk);

    let stats = engine.execute("stats db");
    let joined = stats.lines.join("\n");
    assert!(joined.contains("qos_class=bulk"), "{joined}");
    assert!(joined.contains("admission_shed=0"), "{joined}");

    let bad = engine.execute("class db turbo");
    assert!(bad.lines[0].starts_with("ERR"), "{:?}", bad.lines);
    let scrape = engine.execute("metrics");
    let text = scrape.lines.join("\n");
    assert!(
        text.contains("anno_admission_queue_depth{dataset=\"db\",class=\"bulk\"}"),
        "{text}"
    );
    assert!(
        text.contains("anno_admission_bulk_class{dataset=\"db\"} 1"),
        "{text}"
    );
}

#[test]
fn admission_engine_answers_overload_with_soft_error() {
    let service = Arc::new(Service::new());
    let engine = Engine::with_admission(Arc::clone(&service));
    assert!(engine.execute("open db 0.4 0.7").lines[0].starts_with("OK"));
    let ds = service.get("db").unwrap();
    ds.pause_writer_for_tests(true);
    ds.set_queue_cap(2);

    assert!(engine.execute("row db 1 2 A").lines[0].starts_with("OK queued"));
    assert!(engine.execute("row db 2 3 A").lines[0].starts_with("OK queued"));
    let shed = engine.execute("row db 3 4 A");
    assert!(
        shed.lines[0].starts_with("ERR overloaded"),
        "{:?}",
        shed.lines
    );
    // Reads are never shed — admission only gates writes.
    assert!(engine.execute("stats db").lines[0].starts_with("OK"));
    ds.pause_writer_for_tests(false);
    ds.flush().unwrap();
    assert!(engine.execute("row db 3 4 A").lines[0].starts_with("OK queued"));
}

#[test]
fn sharded_server_survives_slow_loris_and_oversized_lines() {
    let (_service, addr) = start_sharded(2);

    // Eight slow-loris clients: dribble a partial command and hold the
    // connection open. They occupy buffers, not threads — the shard
    // event loops keep serving everyone else.
    let mut lorises = Vec::new();
    for i in 0..8 {
        let mut stream = TcpStream::connect(addr).expect("loris connect");
        stream
            .write_all(format!("row db {i}").as_bytes())
            .expect("loris dribble");
        lorises.push(stream);
    }

    // A newline-free flood past the line cap is answered and closed
    // instead of buffering forever.
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        let _ = stream.write_all(&vec![b'x'; 70 * 1024]);
        let mut response = String::new();
        let _ = BufReader::new(stream).read_to_string(&mut response);
        assert!(response.contains("ERR line exceeds"), "{response}");
    }

    // With the abuse still parked, a well-behaved session completes
    // promptly end to end.
    let start = Instant::now();
    let mut client = Client::connect(addr);
    assert!(client.cmd("ping").starts_with("OK pong"));
    assert!(client.cmd("open db 0.4 0.7").starts_with("OK open"));
    for _ in 0..3 {
        assert!(client.cmd("row db 28 85 Annot_1").starts_with("OK queued"));
    }
    assert!(client.cmd("row db 28 85").starts_with("OK queued"));
    assert!(client.cmd("mine db").starts_with("OK mined"));
    let block = client.cmd_block("rules db");
    assert!(block[0].starts_with("OK"), "{block:?}");
    assert!(client.cmd("quit").starts_with("OK bye"));
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "interactive session stalled behind hostile clients: {:?}",
        start.elapsed()
    );

    // The lorises finally finish their line; the server answers each —
    // nothing was torn down by holding them suspended.
    for (i, mut stream) in lorises.into_iter().enumerate() {
        stream
            .write_all(format!(" {} A\nquit\n", i + 1).as_bytes())
            .expect("loris completes");
        let mut response = String::new();
        let _ = BufReader::new(stream).read_to_string(&mut response);
        // `row` on the not-yet-reopened dataset may be OK or a typed
        // error depending on interleaving with `drop`-less opens above;
        // what matters is a reply and an orderly close.
        assert!(response.contains("OK bye"), "loris {i}: {response}");
    }
}

#[test]
fn bulk_flood_cannot_stall_an_interactive_tenant() {
    let (service, addr) = start_sharded(2);

    // Interactive foreground tenant with a mined snapshot to query.
    let mut setup = Client::connect(addr);
    assert!(setup.cmd("open fg 0.4 0.7").starts_with("OK open"));
    for _ in 0..3 {
        assert!(setup.cmd("row fg 28 85 Annot_1").starts_with("OK queued"));
    }
    assert!(setup.cmd("row fg 28 85").starts_with("OK queued"));
    assert!(setup.cmd("mine fg").starts_with("OK mined"));
    // Bulk background tenant with a tiny admission cap and a paused
    // writer, so the flood saturates it deterministically.
    assert!(setup.cmd("open bg 0.4 0.7").starts_with("OK open"));
    assert!(setup.cmd("class bg bulk").starts_with("OK class bg bulk"));
    let bg = service.get("bg").unwrap();
    bg.set_queue_cap(64);
    bg.pause_writer_for_tests(true);

    // Sample bg's queue depth the whole time: bounded queues mean the
    // depth must never exceed the cap.
    let done = Arc::new(AtomicBool::new(false));
    let max_depth = Arc::new(AtomicU64::new(0));
    let sampler = {
        let bg = bg.clone();
        let done = Arc::clone(&done);
        let max_depth = Arc::clone(&max_depth);
        std::thread::spawn(move || {
            while !done.load(Ordering::SeqCst) {
                max_depth.fetch_max(bg.observability().queue_depth, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(1));
            }
        })
    };

    // The flood: one bulk connection pipelines thousands of writes and
    // reads replies from a second thread (like a real loader would).
    const FLOOD_OPS: usize = 2_000;
    let flood_stream = TcpStream::connect(addr).expect("flood connect");
    let flood_reader = {
        let stream = flood_stream.try_clone().unwrap();
        std::thread::spawn(move || {
            let mut reader = BufReader::new(stream);
            let mut line = String::new();
            let (mut replies, mut shed) = (0u64, 0u64);
            loop {
                line.clear();
                if reader.read_line(&mut line).unwrap_or(0) == 0 {
                    return (replies, shed);
                }
                replies += 1;
                if line.starts_with("ERR overloaded") {
                    shed += 1;
                }
            }
        })
    };
    let flood_writer = {
        let mut stream = flood_stream.try_clone().unwrap();
        std::thread::spawn(move || {
            for i in 0..FLOOD_OPS {
                writeln!(stream, "row bg {} {} Bulk_1", i, i + 1).expect("flood write");
            }
            writeln!(stream, "quit").expect("flood quit");
        })
    };

    // While the flood rages against a saturated bulk tenant, the
    // interactive tenant's queries stay fast: the flood connection is
    // budget-capped per tick and read-suspended once bg is full, so it
    // cannot monopolize the shard loops.
    let mut interactive = Client::connect(addr);
    let mut worst = Duration::ZERO;
    for _ in 0..50 {
        let start = Instant::now();
        let block = interactive.cmd_block("rules fg top 5");
        assert!(block[0].starts_with("OK"), "{block:?}");
        worst = worst.max(start.elapsed());
    }
    assert!(
        worst < Duration::from_secs(2),
        "interactive p100 blew up under bulk flood: {worst:?}"
    );

    // Let the flood finish: resume the writer so bg drains and the
    // suspended connection is re-polled through to `quit`.
    bg.pause_writer_for_tests(false);
    flood_writer.join().unwrap();
    let (replies, shed) = flood_reader.join().unwrap();
    done.store(true, Ordering::SeqCst);
    sampler.join().unwrap();

    // Every flood command was answered (banner line included).
    assert_eq!(replies, FLOOD_OPS as u64 + 2, "banner + ops + quit");
    let obs = bg.observability();
    assert_eq!(
        shed, obs.report.admission_shed,
        "every shed op answers with the Overloaded soft error"
    );
    assert!(
        obs.report.admission_shed >= 1 || obs.report.backpressure_stalls >= 1,
        "saturation never engaged admission control: {obs:?}"
    );
    assert!(
        obs.report.backpressure_stalls >= 1,
        "bulk overload should park the connection, not just error: {obs:?}"
    );
    let cap = bg.queue_cap() as u64;
    assert!(
        max_depth.load(Ordering::SeqCst) <= cap,
        "queue depth {} exceeded the cap {cap}",
        max_depth.load(Ordering::SeqCst)
    );
    // The drained tenant is writable again.
    assert!(interactive
        .cmd("row bg 9999 10000 Bulk_1")
        .starts_with("OK queued"));
    assert!(interactive.cmd("quit").starts_with("OK bye"));
}
