//! Concurrency smoke test: reader threads hammer snapshot queries while a
//! writer streams batched updates. Readers must never observe torn state
//! (rules and relation from different versions), and the final maintained
//! rule set must be exactly what a from-scratch mine produces
//! (`IncrementalMiner::verify_against_remine`, via `Dataset::verify`).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use anno_mine::Thresholds;
use anno_service::{Service, ServiceConfig, UpdateOp};
use anno_store::{dataset_to_string, generate, random_annotation_batch, GeneratorConfig, TupleId};
use rand::rngs::StdRng;
use rand::SeedableRng;

const WRITER_ROUNDS: usize = 30;
const BATCH_SIZE: usize = 8;
const READERS: usize = 4;

#[test]
fn readers_never_block_or_see_torn_state_while_writer_streams() {
    // Seeded synthetic workload, shipped to the service as Fig. 4 text so
    // the dataset interns its own vocabulary.
    let seed_ds = generate(&GeneratorConfig::tiny(33));
    let text = dataset_to_string(&seed_ds.relation);

    let service = Arc::new(Service::new());
    let ds = service
        .create(
            "smoke",
            ServiceConfig {
                thresholds: Thresholds::new(0.2, 0.6),
                ..Default::default()
            },
        )
        .expect("fresh dataset");
    ds.enqueue(UpdateOp::InsertRows(
        text.lines().map(str::to_string).collect(),
    ))
    .expect("load");
    let first = ds.mine().expect("initial mine");
    assert!(!first.rules().is_empty(), "workload must yield rules");

    // Pre-generate annotation batches against a scratch copy (by *name*,
    // since the service's vocabulary is its own), exactly like a client
    // that decided on updates ahead of time.
    let mut scratch = seed_ds.relation.clone();
    let mut rng = StdRng::seed_from_u64(7);
    let mut batches: Vec<Vec<(TupleId, String)>> = Vec::new();
    for _ in 0..WRITER_ROUNDS {
        let batch = random_annotation_batch(&scratch, &mut rng, BATCH_SIZE);
        scratch.apply_annotation_batch(batch.iter().copied());
        batches.push(
            batch
                .iter()
                .map(|u| (u.tuple, scratch.vocab().name(u.annotation).to_string()))
                .collect(),
        );
    }

    let done = Arc::new(AtomicBool::new(false));
    let reads = Arc::new(AtomicU64::new(0));

    let writer = {
        let ds = Arc::clone(&ds);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            for (round, batch) in batches.into_iter().enumerate() {
                ds.enqueue(UpdateOp::AnnotateNamed(batch))
                    .expect("annotate");
                if round % 5 == 0 {
                    // Mix in Case 1/2 inserts so support denominators move.
                    ds.enqueue(UpdateOp::InsertRows(vec![
                        format!("{} {}", 20_000 + round, 30_000 + round),
                        format!("{} {} Annot_1", 20_000 + round, 30_000 + round),
                    ]))
                    .expect("insert");
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            ds.flush().expect("drain");
            done.store(true, Ordering::SeqCst);
        })
    };

    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let ds = Arc::clone(&ds);
            let done = Arc::clone(&done);
            let reads = Arc::clone(&reads);
            std::thread::spawn(move || {
                let mut last_epoch = 0u64;
                while !done.load(Ordering::SeqCst) {
                    let snap = ds.snapshot().expect("published snapshot");
                    // Publishes are atomic pointer swaps: epochs can only
                    // move forward under a reader.
                    assert!(
                        snap.epoch() >= last_epoch,
                        "epoch went backwards: {} then {}",
                        last_epoch,
                        snap.epoch()
                    );
                    last_epoch = snap.epoch();
                    // Torn-state check: every rule was derived over exactly
                    // the relation this snapshot carries.
                    let db_size = snap.db_size() as u64;
                    for rule in snap.rules().rules() {
                        assert_eq!(
                            rule.db_size, db_size,
                            "rule derived against a different relation version"
                        );
                        assert!(rule.meets(&snap.thresholds()));
                    }
                    snap.relation()
                        .check_consistency()
                        .expect("frozen relation consistent");
                    // Exercise the read API itself.
                    let listed = snap.rules_with_antecedent(&[]).len();
                    assert_eq!(listed, snap.rules().len());
                    if let Some((tid, tuple)) = snap.relation().iter().next() {
                        let k = tuple.items().len().min(3);
                        let _ = snap.recommend_for_items(&tuple.items()[..k], 5);
                        let _ = snap.recommend_for_tuple(tid, 5);
                    }
                    reads.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();

    writer.join().expect("writer thread");
    for r in readers {
        r.join().expect("reader thread");
    }

    // The paper's validation criterion, after the full concurrent run.
    assert!(
        ds.verify().expect("mined"),
        "maintained rules diverged from re-mine"
    );

    let m = ds.metrics();
    assert!(reads.load(Ordering::Relaxed) > 0, "readers actually ran");
    assert!(
        m.snapshots_published >= 2,
        "writer published during the run: {m:?}"
    );
    assert!(
        m.batches_applied <= m.ops_enqueued,
        "coalescing cannot invent batches"
    );
    // Old snapshots stay fully usable after the run (copy-on-write).
    assert!(first.relation().check_consistency().is_ok());
    assert!(!first.rules().is_empty());
}
