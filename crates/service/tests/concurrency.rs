//! Concurrency suite: reader threads hammer snapshot queries while a
//! writer streams batched updates. Readers must never observe torn state
//! (rules and relation from different versions), and the final maintained
//! rule set must be exactly what a from-scratch mine produces
//! (`IncrementalMiner::verify_against_remine`, via `Dataset::verify`).
//!
//! With the persistent segment store beneath `AnnotatedRelation`, the
//! suite also stresses the publish-cost contract: snapshots pinned across
//! 100+ coalesced drains stay frozen and keep physically sharing the
//! segments the writer never touched, and a snapshot taken mid-drain
//! carries the pre- or post-drain relation epoch, never an intermediate
//! one.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use anno_mine::Thresholds;
use anno_service::{Service, ServiceConfig, UpdateOp};
use anno_store::{dataset_to_string, generate, random_annotation_batch, GeneratorConfig, TupleId};
use rand::rngs::StdRng;
use rand::SeedableRng;

const WRITER_ROUNDS: usize = 30;
const BATCH_SIZE: usize = 8;
const READERS: usize = 4;

#[test]
fn readers_never_block_or_see_torn_state_while_writer_streams() {
    // Seeded synthetic workload, shipped to the service as Fig. 4 text so
    // the dataset interns its own vocabulary.
    let seed_ds = generate(&GeneratorConfig::tiny(33));
    let text = dataset_to_string(&seed_ds.relation);

    let service = Arc::new(Service::new());
    let ds = service
        .create(
            "smoke",
            ServiceConfig {
                thresholds: Thresholds::new(0.2, 0.6),
                ..Default::default()
            },
        )
        .expect("fresh dataset");
    ds.enqueue(UpdateOp::InsertRows(
        text.lines().map(str::to_string).collect(),
    ))
    .expect("load");
    let first = ds.mine().expect("initial mine");
    assert!(!first.rules().is_empty(), "workload must yield rules");

    // Pre-generate annotation batches against a scratch copy (by *name*,
    // since the service's vocabulary is its own), exactly like a client
    // that decided on updates ahead of time.
    let mut scratch = seed_ds.relation.clone();
    let mut rng = StdRng::seed_from_u64(7);
    let mut batches: Vec<Vec<(TupleId, String)>> = Vec::new();
    for _ in 0..WRITER_ROUNDS {
        let batch = random_annotation_batch(&scratch, &mut rng, BATCH_SIZE);
        scratch.apply_annotation_batch(batch.iter().copied());
        batches.push(
            batch
                .iter()
                .map(|u| (u.tuple, scratch.vocab().name(u.annotation).to_string()))
                .collect(),
        );
    }

    let done = Arc::new(AtomicBool::new(false));
    let reads = Arc::new(AtomicU64::new(0));

    let writer = {
        let ds = Arc::clone(&ds);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            for (round, batch) in batches.into_iter().enumerate() {
                ds.enqueue(UpdateOp::AnnotateNamed(batch))
                    .expect("annotate");
                if round % 5 == 0 {
                    // Mix in Case 1/2 inserts so support denominators move.
                    ds.enqueue(UpdateOp::InsertRows(vec![
                        format!("{} {}", 20_000 + round, 30_000 + round),
                        format!("{} {} Annot_1", 20_000 + round, 30_000 + round),
                    ]))
                    .expect("insert");
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            ds.flush().expect("drain");
            done.store(true, Ordering::SeqCst);
        })
    };

    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let ds = Arc::clone(&ds);
            let done = Arc::clone(&done);
            let reads = Arc::clone(&reads);
            std::thread::spawn(move || {
                let mut last_epoch = 0u64;
                while !done.load(Ordering::SeqCst) {
                    let snap = ds.snapshot().expect("published snapshot");
                    // Publishes are atomic pointer swaps: epochs can only
                    // move forward under a reader.
                    assert!(
                        snap.epoch() >= last_epoch,
                        "epoch went backwards: {} then {}",
                        last_epoch,
                        snap.epoch()
                    );
                    last_epoch = snap.epoch();
                    // Torn-state check: every rule was derived over exactly
                    // the relation this snapshot carries.
                    let db_size = snap.db_size() as u64;
                    for rule in snap.rules().rules() {
                        assert_eq!(
                            rule.db_size, db_size,
                            "rule derived against a different relation version"
                        );
                        assert!(rule.meets(&snap.thresholds()));
                    }
                    snap.relation()
                        .check_consistency()
                        .expect("frozen relation consistent");
                    // Exercise the read API itself.
                    let listed = snap.rules_with_antecedent(&[]).len();
                    assert_eq!(listed, snap.rules().len());
                    if let Some((tid, tuple)) = snap.relation().iter().next() {
                        let k = tuple.items().len().min(3);
                        let _ = snap.recommend_for_items(&tuple.items()[..k], 5);
                        let _ = snap.recommend_for_tuple(tid, 5);
                    }
                    reads.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();

    writer.join().expect("writer thread");
    for r in readers {
        r.join().expect("reader thread");
    }

    // The paper's validation criterion, after the full concurrent run.
    assert!(
        ds.verify().expect("mined"),
        "maintained rules diverged from re-mine"
    );

    let m = ds.metrics();
    assert!(reads.load(Ordering::Relaxed) > 0, "readers actually ran");
    assert!(
        m.snapshots_published >= 2,
        "writer published during the run: {m:?}"
    );
    assert!(
        m.batches_applied <= m.ops_enqueued,
        "coalescing cannot invent batches"
    );
    // Old snapshots stay fully usable after the run (copy-on-write).
    assert!(first.relation().check_consistency().is_ok());
    assert!(!first.rules().is_empty());
}

/// Satellite stress test: N readers pin snapshots while the writer runs
/// 100+ coalesced drains. Pinned snapshots must stay frozen (tuple-count
/// and rule invariants unchanged), epochs must be monotone under every
/// reader, and segments the writer never touched must remain physically
/// shared between the oldest pins and the final published relation.
#[test]
fn readers_pinned_across_hundred_drains_never_see_torn_state() {
    const SEED_TUPLES: usize = 3_000; // three segments at SEGMENT_CAP=1024
    const ROUNDS: usize = 120;

    let service = Arc::new(Service::new());
    let ds = service
        .create(
            "stress",
            ServiceConfig {
                thresholds: Thresholds::new(0.3, 0.8),
                ..Default::default()
            },
        )
        .expect("fresh dataset");
    // Seed: a frequent data pattern in every tuple region, low annotation
    // density so rounds stay effective.
    let rows: Vec<String> = (0..SEED_TUPLES)
        .map(|i| format!("{} {}", 10_000 + (i % 40), 20_000 + (i % 7)))
        .collect();
    ds.enqueue(UpdateOp::InsertRows(rows)).expect("seed");
    ds.mine().expect("initial mine");

    let done = Arc::new(AtomicBool::new(false));

    let writer = {
        let ds = Arc::clone(&ds);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            for round in 0..ROUNDS {
                // Four distinct effective annotations per round, confined
                // to segment 0 (tuple ids < 512)...
                let batch: Vec<(TupleId, String)> = (0..4)
                    .map(|k| (TupleId((round * 4 + k) as u32), format!("S{}", round % 8)))
                    .collect();
                ds.enqueue(UpdateOp::AnnotateNamed(batch))
                    .expect("annotate");
                // ...plus occasional inserts so the tail segment moves too.
                if round % 3 == 0 {
                    ds.enqueue(UpdateOp::InsertRows(vec![
                        format!("{} {}", 30_000 + round, 20_000 + (round % 7)),
                        format!("{} {}", 31_000 + round, 20_000 + (round % 7)),
                    ]))
                    .expect("insert");
                }
                // A flush per round forces a drain boundary: every round is
                // at least one coalesced drain.
                ds.flush().expect("drain");
            }
            done.store(true, Ordering::SeqCst);
        })
    };

    type Pin = (Arc<anno_service::RuleSnapshot>, u64, u64, usize, usize);
    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let ds = Arc::clone(&ds);
            let done = Arc::clone(&done);
            std::thread::spawn(move || -> Vec<Pin> {
                let mut pins: Vec<Pin> = Vec::new();
                let mut last_epoch = 0u64;
                let mut last_rel_epoch = 0u64;
                let mut polls = 0usize;
                while !done.load(Ordering::SeqCst) {
                    let snap = ds.snapshot().expect("published snapshot");
                    // Epoch monotonicity under a pinned reader.
                    assert!(snap.epoch() >= last_epoch, "publish epoch regressed");
                    assert!(
                        snap.relation_epoch() >= last_rel_epoch,
                        "relation epoch regressed: {} then {}",
                        last_rel_epoch,
                        snap.relation_epoch()
                    );
                    last_epoch = snap.epoch();
                    last_rel_epoch = snap.relation_epoch();
                    // Tuple-count invariants: the snapshot is one frozen
                    // moment, not a mix of two.
                    assert_eq!(snap.db_size(), snap.relation().len());
                    assert_eq!(snap.relation_epoch(), snap.relation().epoch());
                    for rule in snap.rules().rules() {
                        assert_eq!(rule.db_size, snap.db_size() as u64);
                    }
                    // Pin a bounded sample of observations for the whole
                    // run (unbounded pinning would turn the final
                    // verification pass into the bottleneck).
                    if polls % 64 == 0 && pins.len() < 128 {
                        pins.push((
                            Arc::clone(&snap),
                            snap.epoch(),
                            snap.relation_epoch(),
                            snap.db_size(),
                            snap.rules().len(),
                        ));
                    }
                    polls += 1;
                    // Hammering the read path is the point, but an
                    // unyielding spin starves the writer's publish lock on
                    // small CI machines.
                    std::thread::yield_now();
                }
                pins
            })
        })
        .collect();

    writer.join().expect("writer thread");
    let all_pins: Vec<Pin> = readers
        .into_iter()
        .flat_map(|r| r.join().expect("reader thread"))
        .collect();

    assert!(
        ds.drains() >= 100,
        "writer must have run 100+ coalesced drains, got {}",
        ds.drains()
    );
    assert!(ds.verify().expect("mined"), "maintained rules stayed exact");
    assert!(!all_pins.is_empty(), "readers actually pinned snapshots");

    // Every pinned snapshot is still exactly what it was at pin time.
    let final_snap = ds.snapshot().expect("final snapshot");
    for (snap, epoch, rel_epoch, db_size, rules_len) in &all_pins {
        assert_eq!(snap.epoch(), *epoch);
        assert_eq!(snap.relation_epoch(), *rel_epoch);
        assert_eq!(snap.db_size(), *db_size);
        assert_eq!(snap.rules().len(), *rules_len);
        snap.relation()
            .check_consistency()
            .expect("pinned relation consistent");
        // Structural sharing survived the run: segment 1 (tuple ids
        // 1024..2048) was never written, so every pin — however old —
        // still physically shares storage with the live relation.
        assert!(
            snap.relation().shared_segments_with(final_snap.relation()) >= 1,
            "pinned snapshot lost all shared segments (epoch {epoch})"
        );
    }
}

/// Satellite epoch fix test: the relation's mutation epoch advances many
/// times *inside* one coalesced drain, but snapshots are published only at
/// drain boundaries — a concurrent reader must only ever observe the
/// pre-drain or post-drain epoch, never an intermediate one.
#[test]
fn mid_drain_snapshots_see_pre_or_post_epoch_only() {
    const BATCH: u32 = 500;

    let service = Arc::new(Service::new());
    let ds = service
        .create(
            "epochs",
            ServiceConfig {
                thresholds: Thresholds::new(0.3, 0.8),
                ..Default::default()
            },
        )
        .expect("fresh dataset");
    let rows: Vec<String> = (0..BATCH).map(|i| format!("{} {}", 100 + i, 7)).collect();
    ds.enqueue(UpdateOp::InsertRows(rows)).expect("seed");
    ds.mine().expect("initial mine");

    let pre = ds.snapshot().expect("pre-drain snapshot").relation_epoch();

    let done = Arc::new(AtomicBool::new(false));
    let observer = {
        let ds = Arc::clone(&ds);
        let done = Arc::clone(&done);
        std::thread::spawn(move || -> Vec<u64> {
            let mut seen = Vec::new();
            while !done.load(Ordering::SeqCst) {
                let e = ds.snapshot().expect("snapshot").relation_epoch();
                if seen.last() != Some(&e) {
                    seen.push(e);
                }
            }
            seen
        })
    };

    // One op = one drain = BATCH effective epoch bumps inside a single
    // maintenance pass, published exactly once at the boundary.
    let batch: Vec<(TupleId, String)> = (0..BATCH).map(|i| (TupleId(i), "Bulk".into())).collect();
    ds.enqueue(UpdateOp::AnnotateNamed(batch))
        .expect("annotate");
    ds.flush().expect("drain");
    done.store(true, Ordering::SeqCst);
    let seen = observer.join().expect("observer thread");

    let post = ds.snapshot().expect("post-drain snapshot").relation_epoch();
    assert_eq!(
        post,
        pre + u64::from(BATCH),
        "every update in the batch bumps the epoch exactly once"
    );
    for e in &seen {
        assert!(
            *e == pre || *e == post,
            "observed intermediate mid-drain epoch {e} (pre {pre}, post {post})"
        );
    }
    assert!(ds.verify().expect("mined"));
}

/// Observability satellite: the queue-depth and unacked-drain gauges
/// mirror the writer's actual state under concurrent enqueue pressure —
/// nonzero while clients race ops in, and exactly zero once `flush`
/// returns (a flush barrier means applied *and* acked, so both levels
/// must have drained with it).
#[test]
fn queue_gauges_return_to_zero_after_flush() {
    const CLIENTS: usize = 4;
    const OPS_PER_CLIENT: u32 = 25;

    let service = Arc::new(Service::new());
    let ds = service
        .create(
            "gauges",
            ServiceConfig {
                thresholds: Thresholds::new(0.3, 0.8),
                ..Default::default()
            },
        )
        .expect("fresh dataset");
    let rows: Vec<String> = (0..200).map(|i| format!("{} 7", 100 + i)).collect();
    ds.enqueue(UpdateOp::InsertRows(rows)).expect("seed");
    ds.mine().expect("initial mine");

    let saw_depth = Arc::new(AtomicU64::new(0));
    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let ds = Arc::clone(&ds);
            let saw_depth = Arc::clone(&saw_depth);
            std::thread::spawn(move || {
                for i in 0..OPS_PER_CLIENT {
                    let tid = TupleId((c as u32 * OPS_PER_CLIENT + i) % 200);
                    ds.enqueue(UpdateOp::AnnotateNamed(vec![(tid, format!("Ann_{c}_{i}"))]))
                        .expect("enqueue");
                    // The gauge is set under the queue lock in the same
                    // critical section as the enqueue, so right after at
                    // least this thread's op was once reflected in it.
                    saw_depth.fetch_max(ds.observability().queue_depth, Ordering::SeqCst);
                }
            })
        })
        .collect();
    for client in clients {
        client.join().expect("client thread");
    }
    assert!(
        saw_depth.load(Ordering::SeqCst) > 0,
        "racing clients never observed their own pending updates in the gauge"
    );

    ds.flush().expect("flush barrier");
    let obs = ds.observability();
    assert_eq!(
        obs.queue_depth, 0,
        "flush returned with updates still pending in the queue gauge"
    );
    assert_eq!(
        obs.unacked_drains, 0,
        "memory-only datasets never pipeline acks"
    );
    assert_eq!(
        obs.drain_batch.sum(),
        ds.metrics().updates_enqueued,
        "every enqueued update passed through exactly one drained batch"
    );
    assert!(obs.drain_latency.count() > 0, "drains recorded latencies");
    assert!(ds.verify().expect("mined"));
}
