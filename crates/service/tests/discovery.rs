//! Discovery subsystem suite (ISSUE 8): the incrementally maintained
//! correlation top-k across the durability and replication layers, plus
//! the offloaded auto-checkpoint encode that ships alongside it.
//!
//! The contracts under test:
//!
//! * **`discover` answers survive a restart.** Reopening a durable
//!   dataset — from the WAL alone or from a checkpoint plus log tail —
//!   republishes the same discovery snapshot at the same epoch, and the
//!   rebuilt index matches a full rescan (`Dataset::verify` checks both
//!   the rule set and the discovery index).
//! * **A follower's `discover` matches the leader's committed prefix.**
//!   Catch-up, compaction restarts, and promotion all converge the
//!   follower's discovery snapshot onto the leader's, published in
//!   lock-step with its rule snapshot.
//! * **A stalled auto-checkpoint encode blocks nothing.** With the
//!   O(|D|) encode pinned slow on the helper thread, drains, flushes,
//!   and discovery reads all proceed; a manual checkpoint joins the
//!   helper before committing its own (position order holds).

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use anno_mine::{IncrementalConfig, Thresholds};
use anno_service::{CheckpointPolicy, Dataset, DiscoverySnapshot, DurabilityOptions, UpdateOp};
use anno_store::{snapshot_to_string, TupleId};
use proptest::prelude::*;

static CASE: AtomicUsize = AtomicUsize::new(0);

fn test_dir(tag: &str) -> PathBuf {
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("anno-discovery-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config() -> IncrementalConfig {
    IncrementalConfig {
        thresholds: Thresholds::new(0.3, 0.6),
        ..Default::default()
    }
}

fn drain(ds: &Dataset, op: UpdateOp) {
    ds.enqueue(op).unwrap();
    ds.flush().unwrap();
}

fn rows(specs: &[&str]) -> UpdateOp {
    UpdateOp::InsertRows(specs.iter().map(|s| s.to_string()).collect())
}

fn annotate(pairs: &[(u32, &str)]) -> UpdateOp {
    UpdateOp::AnnotateNamed(
        pairs
            .iter()
            .map(|&(tid, name)| (TupleId(tid), name.to_string()))
            .collect(),
    )
}

/// Rows whose annotation families co-fire: `Annot_1`×`Annot_2` on three
/// tuples, `Annot_1` alone on one — enough pairs for a non-empty top-k.
const SEED: [&str; 6] = [
    "28 85 Annot_1 Annot_2",
    "28 85 Annot_1 Annot_2",
    "28 85 Annot_1 Annot_2",
    "28 85 Annot_1",
    "17 99 Annot_3",
    "17 99",
];

/// The content identity a `discover` reader can observe: every ranked
/// pair's names and scores, plus the denominator they were scored at.
/// Epoch is deliberately excluded — leader and follower publish on
/// their own counters.
fn disco_content(snap: &DiscoverySnapshot) -> (u64, u64, Vec<String>) {
    let fmt = |p: &anno_service::DiscoveredPair| {
        format!(
            "{} ~ {} count={} support={:.6} lift={:.6} significant={} cross={}",
            p.a_name, p.b_name, p.count, p.support, p.lift, p.significant, p.cross
        )
    };
    (
        snap.db_size,
        snap.pairs_tracked,
        snap.cross.iter().chain(&snap.within).map(fmt).collect(),
    )
}

/// Published-in-lock-step pin: the discovery snapshot and the rule
/// snapshot a reader pairs must carry the same epoch.
fn assert_lock_step(ds: &Dataset) {
    let disco = ds.try_discovery().expect("discovery published");
    let snap = ds.try_snapshot().expect("rules published");
    assert_eq!(
        disco.epoch,
        snap.epoch(),
        "discovery and rule snapshots must publish at the same instant"
    );
}

/// A mixed drain script that moves every pair-maintenance path:
/// annotate-new, annotate-known, remove, delete, fresh co-fired rows.
fn churn(ds: &Dataset) {
    drain(ds, annotate(&[(4, "Annot_2"), (5, "Annot_1")]));
    drain(
        ds,
        rows(&["40 50 Annot_2 Annot_3", "40 51 Annot_2 Annot_3"]),
    );
    drain(
        ds,
        UpdateOp::RemoveNamed(vec![(TupleId(1), "Annot_2".into())]),
    );
    drain(ds, UpdateOp::DeleteTuples(vec![TupleId(2)]));
    drain(ds, annotate(&[(6, "Annot_3")]));
}

/// Durable reopen, WAL replay alone: the recovered dataset republishes
/// the same discovery content at the same epoch, and the rebuilt index
/// matches a rescan.
#[test]
fn discover_answers_survive_reopen_from_the_wal() {
    let dir = test_dir("reopen-wal");
    let content = {
        let ds = Dataset::open("db", config(), &dir).unwrap();
        drain(&ds, rows(&SEED));
        ds.mine().unwrap();
        churn(&ds);
        assert_lock_step(&ds);
        assert!(ds.verify().unwrap(), "live index matches a rescan");
        let disco = ds.discovery().unwrap();
        assert!(!disco.within.is_empty() || !disco.cross.is_empty());
        disco_content(&disco)
    };
    let ds = Dataset::open("db", config(), &dir).unwrap();
    let disco = ds.discovery().unwrap();
    assert_eq!(disco_content(&disco), content, "replay rebuilds the top-k");
    assert_lock_step(&ds);
    assert!(ds.verify().unwrap());
    drop(ds);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Durable reopen through a checkpoint: the persisted discovery section
/// restores the index without a rebuild, the replayed tail re-applies
/// on top, and the answers match the pre-restart snapshot.
#[test]
fn discover_answers_survive_reopen_from_a_checkpoint_plus_tail() {
    let dir = test_dir("reopen-ckpt");
    let content = {
        let ds = Dataset::open("db", config(), &dir).unwrap();
        drain(&ds, rows(&SEED));
        ds.mine().unwrap();
        drain(&ds, annotate(&[(4, "Annot_2"), (5, "Annot_1")]));
        ds.checkpoint().unwrap();
        // Tail past the checkpoint: these drains exist only in the log.
        drain(
            &ds,
            rows(&["40 50 Annot_2 Annot_3", "40 51 Annot_2 Annot_3"]),
        );
        drain(
            &ds,
            UpdateOp::RemoveNamed(vec![(TupleId(1), "Annot_2".into())]),
        );
        disco_content(&ds.discovery().unwrap())
    };
    let ds = Dataset::open("db", config(), &dir).unwrap();
    let ws = ds.wal_stats().unwrap();
    assert!(
        ws.replayed_records < 5,
        "recovery must start from the checkpoint, not a full replay: {ws:?}"
    );
    assert_eq!(disco_content(&ds.discovery().unwrap()), content);
    assert_lock_step(&ds);
    assert!(ds.verify().unwrap());
    drop(ds);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A poll interval long enough that the tail thread never fires on its
/// own — every advance below is an explicit `catchup_now`.
const MANUAL: Duration = Duration::from_secs(3600);

/// Follower replication: at every catch-up point — including across a
/// compaction restart and after promotion — the follower's `discover`
/// content equals the leader's committed prefix, published in lock-step
/// with its own rule snapshot.
#[test]
fn follower_discover_matches_the_leader_committed_prefix_and_survives_promotion() {
    let dir = test_dir("follower");
    let leader = Dataset::open("db", config(), &dir).unwrap();
    drain(&leader, rows(&SEED));
    leader.mine().unwrap();

    let follower = Dataset::follow("db", config(), &dir, MANUAL).unwrap();
    follower.catchup_now().unwrap();
    assert_eq!(
        disco_content(&follower.try_discovery().unwrap()),
        disco_content(&leader.try_discovery().unwrap()),
        "caught-up follower serves the leader's top-k"
    );
    assert_lock_step(&follower);

    // Stream churn with the follower trailing by explicit polls.
    churn(&leader);
    follower.catchup_now().unwrap();
    assert_eq!(
        disco_content(&follower.try_discovery().unwrap()),
        disco_content(&leader.try_discovery().unwrap()),
    );
    assert_lock_step(&follower);

    // Leader checkpoints and compacts; the follower's cursor restarts
    // from the shipped checkpoint — whose discovery section it decodes.
    for i in 0..10u32 {
        drain(
            &leader,
            rows(&[&format!("{} {} Annot_1 Annot_2", 100 + i, 200 + i)]),
        );
    }
    leader.checkpoint().unwrap();
    drain(&leader, annotate(&[(3, "Annot_3")]));
    let st = follower.catchup_now().unwrap();
    assert_eq!(st.failed, None);
    assert!(
        st.restarts >= 1,
        "compaction must restart the cursor: {st:?}"
    );
    assert_eq!(
        disco_content(&follower.try_discovery().unwrap()),
        disco_content(&leader.try_discovery().unwrap()),
        "discovery converges across the compaction restart"
    );
    assert_lock_step(&follower);

    // Kill the leader; the promoted follower keeps the same answers and
    // maintains them through new writes.
    let committed = disco_content(&leader.try_discovery().unwrap());
    drop(leader);
    follower.catchup_now().unwrap();
    follower.promote().unwrap();
    assert_eq!(
        disco_content(&follower.try_discovery().unwrap()),
        committed,
        "promotion serves exactly the committed top-k"
    );
    assert!(
        follower.verify().unwrap(),
        "index matches a rescan post-promote"
    );
    drain(&follower, rows(&["77 88 Annot_1 Annot_3"]));
    assert_lock_step(&follower);
    assert!(follower.verify().unwrap());
    drop(follower);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The satellite regression pin: with the auto-checkpoint encode stalled
/// on the helper thread, drains/flushes/reads all complete long before
/// the stall elapses — the writer is never blocked on the O(|D|) encode
/// — and a manual checkpoint afterwards joins the helper before
/// committing its own, newer position.
#[test]
fn drains_proceed_while_an_auto_checkpoint_encode_is_stalled() {
    const STALL: Duration = Duration::from_millis(1500);
    let dir = test_dir("stalled-encode");
    let options = DurabilityOptions {
        auto_checkpoint: CheckpointPolicy {
            replayed_records: Some(2),
            ..Default::default()
        },
        encode_stall_for_tests: Some(STALL),
        ..Default::default()
    };
    let ds = Dataset::open_with("db", config(), &dir, options).unwrap();
    drain(&ds, rows(&SEED));
    ds.mine().unwrap();
    // This drain crosses the 2-record threshold: the writer captures and
    // hands the encode to the helper, which now sleeps out the stall.
    drain(&ds, annotate(&[(4, "Annot_2")]));

    let t0 = Instant::now();
    for i in 0..3u32 {
        drain(
            &ds,
            rows(&[&format!("{} {} Annot_1 Annot_2", 300 + i, 400 + i)]),
        );
        assert!(ds.discovery().unwrap().pairs_tracked >= 1);
        assert!(ds.try_snapshot().is_some());
    }
    let elapsed = t0.elapsed();
    assert!(
        elapsed < STALL,
        "drains concurrent with a stalled encode must not wait it out: \
         3 drains took {elapsed:?} against a {STALL:?} stall"
    );

    // A manual checkpoint must first join the stalled helper (commit
    // order = capture order), then write its own, newer position.
    ds.checkpoint().unwrap();
    let m = ds.metrics();
    assert!(m.auto_checkpoints >= 1, "the policy's commit landed: {m:?}");
    assert!(
        m.checkpoints > m.auto_checkpoints,
        "the manual commit landed after it: {m:?}"
    );
    let ws = ds.wal_stats().unwrap();
    assert_eq!(
        ws.since_checkpoint_records, 0,
        "the newest position wins: {ws:?}"
    );

    // And the stalled-then-committed chain recovers cleanly.
    let content = disco_content(&ds.discovery().unwrap());
    let text = snapshot_to_string(ds.snapshot().unwrap().relation());
    drop(ds);
    let ds = Dataset::open("db", config(), &dir).unwrap();
    assert_eq!(
        ds.wal_stats().unwrap().replayed_records,
        0,
        "manual checkpoint covered the log"
    );
    assert_eq!(snapshot_to_string(ds.snapshot().unwrap().relation()), text);
    assert_eq!(disco_content(&ds.discovery().unwrap()), content);
    assert!(ds.verify().unwrap());
    drop(ds);
    std::fs::remove_dir_all(&dir).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Restart transparency at any cut: run a random drain script, kill,
    /// reopen — the republished discovery top-k equals the pre-kill one
    /// and matches a rescan, with or without a mid-script checkpoint.
    #[test]
    fn discover_reopen_is_transparent_at_any_drain_cut(
        drain_specs in proptest::collection::vec((0u8..4, 0u32..24, 0u32..4), 1..8),
        checkpoint_pick in 0usize..9,
    ) {
        // 0 means "no mid-script checkpoint".
        let checkpoint_at = (checkpoint_pick > 0).then(|| checkpoint_pick - 1);
        let dir = test_dir("prop-reopen");
        let content = {
            let ds = Dataset::open("db", config(), &dir).unwrap();
            drain(&ds, rows(&SEED));
            ds.mine().unwrap();
            for (i, &(kind, a, b)) in drain_specs.iter().enumerate() {
                if checkpoint_at == Some(i) {
                    ds.checkpoint().unwrap();
                }
                let op = match kind {
                    0 => rows(&[&format!("{} {} Annot_{b}", a % 9, a % 7)]),
                    1 => annotate(&[(a % 8, &format!("Annot_{b}"))]),
                    2 => UpdateOp::RemoveNamed(vec![(TupleId(a % 8), format!("Annot_{b}"))]),
                    _ => UpdateOp::DeleteTuples(vec![TupleId(a % 8)]),
                };
                drain(&ds, op);
            }
            prop_assert!(ds.verify().unwrap());
            disco_content(&ds.discovery().unwrap())
        };
        let ds = Dataset::open("db", config(), &dir).unwrap();
        prop_assert_eq!(disco_content(&ds.discovery().unwrap()), content);
        assert_lock_step(&ds);
        prop_assert!(ds.verify().unwrap());
        drop(ds);
        std::fs::remove_dir_all(&dir).ok();
    }
}
