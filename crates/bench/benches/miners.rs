//! E8 (ablation) — the paper treats Apriori as one interchangeable
//! "state-of-art technique": this bench compares the three independent
//! frequent-itemset miners on the same workload and mode.

use anno_bench::paper_workload;
use anno_mine::{
    apriori, eclat, fpgrowth, transactions_of, AprioriConfig, CountingStrategy, MiningMode,
};
use criterion::{criterion_group, criterion_main, Criterion};

fn miners(c: &mut Criterion) {
    let ds = paper_workload();
    let transactions = transactions_of(&ds.relation, MiningMode::Annotated);
    let alpha = 0.25;
    let mut group = c.benchmark_group("miners");
    group.sample_size(10);
    group.bench_function("apriori_hashtree", |b| {
        b.iter(|| {
            apriori(
                &transactions,
                alpha,
                &AprioriConfig {
                    mode: MiningMode::Annotated,
                    counting: CountingStrategy::HashTree,
                    max_len: None,
                },
            )
        })
    });
    group.bench_function("fpgrowth", |b| {
        b.iter(|| fpgrowth(&transactions, alpha, MiningMode::Annotated))
    });
    group.bench_function("eclat", |b| {
        b.iter(|| eclat(&transactions, alpha, MiningMode::Annotated))
    });
    group.finish();
}

criterion_group!(benches, miners);
criterion_main!(benches);
