//! E6 — generalization-based correlations (§4.1, Figs. 8–10): the cost of
//! building the extended annotated database and mining it, vs mining the
//! raw database (which misses the fragmented correlations entirely — the
//! `experiments` binary reports the rule-count uplift).

use anno_bench::paper_thresholds;
use anno_mine::{mine_generalized, mine_rules};
use anno_store::{keyword_rule, AnnotatedRelation, Taxonomy, Tuple};
use criterion::{criterion_group, criterion_main, Criterion};

/// A database whose annotations fragment one concept across `phrasings`
/// surface forms (the Fig. 8 situation, at benchmark scale).
pub fn fragmented_db(tuples: usize, phrasings: usize) -> (AnnotatedRelation, Taxonomy) {
    let mut rel = AnnotatedRelation::new("fragmented");
    let phrases: Vec<String> = (0..phrasings)
        .map(|i| format!("flagged invalid by curator {i}"))
        .collect();
    for i in 0..tuples {
        let key = rel.vocab_mut().data(&format!("{}", 100 + i % 4));
        let val = rel.vocab_mut().data(&format!("{}", 200 + i % 7));
        let mut anns = Vec::new();
        if i % 4 == 0 {
            let phrase = phrases[i % phrasings].as_str();
            anns.push(rel.vocab_mut().annotation(phrase));
        }
        rel.insert(Tuple::new([key, val], anns));
    }
    let mut tax = Taxonomy::new();
    tax.add_rule(&keyword_rule(rel.vocab_mut(), &["invalid"], "Invalidation"));
    (rel, tax)
}

fn generalization(c: &mut Criterion) {
    let (rel, tax) = fragmented_db(8000, 6);
    let thresholds = paper_thresholds();
    let mut group = c.benchmark_group("generalization");
    group.sample_size(10);
    group.bench_function("raw_mining", |b| b.iter(|| mine_rules(&rel, &thresholds)));
    group.bench_function("extend_database_only", |b| {
        b.iter(|| tax.extend_relation(&rel))
    });
    group.bench_function("generalized_mining", |b| {
        b.iter(|| mine_generalized(&rel, &tax, &thresholds))
    });
    group.finish();
}

criterion_group!(benches, generalization);
criterion_main!(benches);
