//! Replication benchmarks: what log shipping costs on each side of the
//! wire-less wire (recorded in `BENCH_replication.json` at the workspace
//! root).
//!
//! Three questions:
//!
//! * **Follower apply throughput** — a cold follower attaching to a dead
//!   leader's directory and catching up over the whole log: the mine
//!   event plus every maintenance drain replayed through the same
//!   `apply_op` path recovery uses, published at record boundaries. This
//!   is the rebuild-a-replica number; each run also prints the measured
//!   records/s.
//! * **Tail-poll visibility latency** — with the leader live and the
//!   follower attached, the time from one effective drain committing on
//!   the leader to that drain being published on the follower (one
//!   explicit catchup poll): the freshness floor of follower reads.
//! * **Promote latency** — from a caught-up follower on a dead leader's
//!   directory to a writable leader: lock takeover, tail-loop shutdown,
//!   full recovery, state install (teardown of the promoted dataset is
//!   included in the timed region; directory copy and attach are not).
//!
//! Set `ANNO_BENCH_QUICK=1` (the CI bench smoke gate does) to shrink
//! sizes so every group still runs end to end in seconds.

use std::cell::Cell;
use std::path::{Path, PathBuf};
use std::time::Duration;

use anno_mine::{IncrementalConfig, Thresholds};
use anno_service::{Dataset, UpdateOp};
use anno_store::TupleId;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

fn quick() -> bool {
    std::env::var_os("ANNO_BENCH_QUICK").is_some()
}

fn bench_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("anno-repl-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config() -> IncrementalConfig {
    IncrementalConfig {
        thresholds: Thresholds::new(0.4, 0.8),
        ..Default::default()
    }
}

/// A poll interval long enough that every poll in a benchmark is an
/// explicit `catchup_now` — nothing fires between measurements.
const MANUAL: Duration = Duration::from_secs(3600);

fn row(i: usize) -> String {
    if i % 10 == 0 {
        format!("{} {} Seed", i % 997, (i * 7 + 1) % 997)
    } else {
        format!("{} {}", i % 997, (i * 7 + 1) % 997)
    }
}

fn load(ds: &Dataset, n: usize) {
    for chunk_start in (0..n).step_by(8192) {
        let lines: Vec<String> = (chunk_start..(chunk_start + 8192).min(n))
            .map(row)
            .collect();
        ds.enqueue(UpdateOp::InsertRows(lines)).unwrap();
    }
    ds.flush().unwrap();
}

/// Build a dead leader's log directory: `n` loaded tuples, a mine, then
/// `drains` effective single-annotation toggle drains — the workload a
/// follower must replay. Returns the number of log records written.
fn build_leader_log(dir: &Path, n: usize, drains: usize) -> u64 {
    let ds = Dataset::open("bench", config(), dir).unwrap();
    load(&ds, n);
    ds.mine().unwrap();
    for i in 0..drains {
        let t = TupleId((i as u32 % 512) * 39 + 1);
        let named = vec![(t, "Seed".to_string())];
        let op = if (i / 512) % 2 == 0 {
            UpdateOp::AnnotateNamed(named)
        } else {
            UpdateOp::RemoveNamed(named)
        };
        ds.enqueue(op).unwrap();
        ds.flush().unwrap();
    }
    let records = ds.wal_stats().unwrap().appends;
    drop(ds);
    records
}

/// Copy a log directory (the lock file is gone once the leader is
/// dropped, so a plain file copy is a dead leader's directory).
fn copy_log_dir(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).unwrap();
    for entry in std::fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), to.join(entry.file_name())).unwrap();
    }
}

fn follower_apply_throughput(c: &mut Criterion) {
    let n: usize = if quick() { 2_000 } else { 10_000 };
    let drains: usize = if quick() { 64 } else { 256 };
    let dir = bench_dir("apply");
    let records = build_leader_log(&dir, n, drains);

    let mut group = c.benchmark_group(format!("replication_apply/{n}x{drains}"));
    group.sample_size(10);
    let mut last = Duration::ZERO;
    group.bench_function("full_catchup", |b| {
        b.iter(|| {
            let start = std::time::Instant::now();
            let follower = Dataset::follow("bench", config(), &dir, MANUAL).unwrap();
            let st = follower.catchup_now().unwrap();
            assert_eq!(st.bytes_behind, 0, "{st:?}");
            last = start.elapsed();
            drop(follower);
        })
    });
    println!(
        "replication_apply/records_per_sec: {:.0} ({records} records in {last:.2?})",
        records as f64 / last.as_secs_f64().max(1e-9)
    );
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

fn tail_poll_latency(c: &mut Criterion) {
    let n: usize = if quick() { 2_000 } else { 10_000 };
    let dir = bench_dir("tail");
    let leader = Dataset::open("bench", config(), &dir).unwrap();
    load(&leader, n);
    leader.mine().unwrap();
    let follower = Dataset::follow("bench", config(), &dir, MANUAL).unwrap();
    follower.catchup_now().unwrap();

    let mut group = c.benchmark_group(format!("replication_tail/{n}"));
    let mut attach = true;
    let mut i = 0u32;
    group.bench_function("drain_to_visible", |b| {
        b.iter(|| {
            let t = TupleId((i % 512) * 39 + 1);
            i += 1;
            let named = vec![(t, "Seed".to_string())];
            let op = if attach {
                UpdateOp::AnnotateNamed(named)
            } else {
                UpdateOp::RemoveNamed(named)
            };
            if i % 512 == 0 {
                attach = !attach;
            }
            leader.enqueue(op).unwrap();
            leader.flush().unwrap();
            let st = follower.catchup_now().unwrap();
            assert_eq!(st.bytes_behind, 0, "{st:?}");
        })
    });
    group.finish();
    drop(follower);
    drop(leader);
    let _ = std::fs::remove_dir_all(&dir);
}

fn promote_latency(c: &mut Criterion) {
    let n: usize = if quick() { 2_000 } else { 10_000 };
    let drains: usize = if quick() { 32 } else { 128 };
    let template = bench_dir("promote-template");
    build_leader_log(&template, n, drains);

    let mut group = c.benchmark_group(format!("replication_promote/{n}x{drains}"));
    group.sample_size(10);
    let copies = Cell::new(0u32);
    let copy_dir = |i: u32| {
        std::env::temp_dir().join(format!(
            "anno-repl-bench-promote-{}-{i}",
            std::process::id()
        ))
    };
    group.bench_function("promote", |b| {
        b.iter_batched(
            || {
                let i = copies.get();
                copies.set(i + 1);
                let dir = copy_dir(i);
                let _ = std::fs::remove_dir_all(&dir);
                copy_log_dir(&template, &dir);
                let follower = Dataset::follow("bench", config(), &dir, MANUAL).unwrap();
                follower.catchup_now().unwrap();
                follower
            },
            |follower| {
                follower.promote().unwrap();
                assert!(follower.is_durable());
                follower
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
    for i in 0..copies.get() {
        let _ = std::fs::remove_dir_all(copy_dir(i));
    }
    let _ = std::fs::remove_dir_all(&template);
}

criterion_group!(
    benches,
    follower_apply_throughput,
    tail_poll_latency,
    promote_latency
);
criterion_main!(benches);
