//! E10 (ablation) — the retention factor: how far below α the candidate
//! store reaches. Lower retention buys a bigger evolution budget (fewer
//! fallback re-mines) and a more complete candidate-rule store at the cost
//! of a larger table, slower initial mine, and slower per-batch updates.

use anno_bench::{paper_thresholds, paper_workload};
use anno_mine::{IncrementalConfig, IncrementalMiner};
use anno_store::random_annotation_batch;
use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn retention(c: &mut Criterion) {
    let ds = paper_workload();
    let rel = ds.relation;
    let mut group = c.benchmark_group("retention");
    group.sample_size(10);
    for &retention in &[1.0f64, 0.75, 0.5, 0.25] {
        let config = IncrementalConfig {
            thresholds: paper_thresholds(),
            retention,
            ..Default::default()
        };
        group.bench_with_input(
            BenchmarkId::new("initial_mine", retention),
            &config,
            |b, config| b.iter(|| IncrementalMiner::mine_initial(&rel, *config)),
        );

        let miner = IncrementalMiner::mine_initial(&rel, config);
        let mut rng = StdRng::seed_from_u64(3);
        let batch = random_annotation_batch(&rel, &mut rng, 200);
        group.bench_with_input(
            BenchmarkId::new("case3_batch_200", retention),
            &(),
            |b, ()| {
                b.iter_batched(
                    || (miner.clone(), rel.clone(), batch.clone()),
                    |(mut m, mut r, batch)| m.apply_annotations(&mut r, batch),
                    BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, retention);
criterion_main!(benches);
