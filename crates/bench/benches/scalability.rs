//! E9 — scalability extension of Fig. 16: how the incremental-vs-re-mine
//! gap evolves with database size. Expected shape: full re-mining grows
//! with |D| while Case-3 maintenance cost tracks the delta, so the gap
//! widens as the database grows.

use anno_bench::{paper_thresholds, sized_workload};
use anno_mine::{mine_rules, IncrementalConfig, IncrementalMiner};
use anno_store::random_annotation_batch;
use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn scalability(c: &mut Criterion) {
    let mut group = c.benchmark_group("scalability");
    group.sample_size(10);
    for &tuples in &[1000usize, 4000, 16000] {
        let ds = sized_workload(tuples);
        let rel = ds.relation;
        let miner = IncrementalMiner::mine_initial(
            &rel,
            IncrementalConfig {
                thresholds: paper_thresholds(),
                ..Default::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(7);
        let batch = random_annotation_batch(&rel, &mut rng, 200);

        group.bench_with_input(BenchmarkId::new("full_remine", tuples), &rel, |b, rel| {
            b.iter(|| mine_rules(rel, &paper_thresholds()))
        });
        group.bench_with_input(
            BenchmarkId::new("case3_incremental_200", tuples),
            &(),
            |b, ()| {
                b.iter_batched(
                    || (miner.clone(), rel.clone(), batch.clone()),
                    |(mut m, mut r, batch)| m.apply_annotations(&mut r, batch),
                    BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, scalability);
criterion_main!(benches);
