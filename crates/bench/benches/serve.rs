//! Sharded front-end load benchmarks (recorded in `BENCH_serve.json` at
//! the workspace root).
//!
//! Two questions:
//!
//! * **Protocol round trips** — what one `ping` / queued write / top-k
//!   rule query costs end to end through a real TCP socket and the
//!   worker-per-core reactor (`serve_round_trip/*`). This is the floor
//!   an idle shard adds over the engine itself.
//! * **Admission under flood** — K tenants × M concurrent clients,
//!   mixed interactive/bulk (`serve_flood/*`): bulk loaders pipeline
//!   tens of thousands of writes at tenants with small bounded queues
//!   while interactive clients keep querying mined tenants. The bench
//!   *asserts* the two admission invariants the CI load-smoke job
//!   gates on — no bulk tenant's queue ever exceeds its configured
//!   cap, and the interactive p99 stays bounded while the flood rages
//!   — and prints them as grep-able `serve_flood:` marker lines next
//!   to the usual `bench:` timings.
//!
//! Set `ANNO_BENCH_QUICK=1` (the CI gates do) to shrink the flood so
//! the whole target runs in seconds.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use anno_service::server::serve_listener_sharded;
use anno_service::{Dataset, Service};
use criterion::{criterion_group, criterion_main, Criterion};

fn quick() -> bool {
    std::env::var_os("ANNO_BENCH_QUICK").is_some()
}

/// Every bulk tenant's admission cap on pending individual updates:
/// small enough that the flood saturates it, so the bench exercises
/// shed + read-suspension rather than an always-empty queue.
const BULK_CAP: usize = 256;

/// Writes each bulk client pipelines before waiting for that batch's
/// replies — deeper than the cap so admission is genuinely exercised,
/// bounded so a suspended connection's unread input stays within the
/// reactor's buffer caps.
const PIPELINE: usize = 512;

fn start_sharded(shards: usize) -> (Arc<Service>, SocketAddr) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().unwrap();
    let service = Arc::new(Service::new());
    let serve = Arc::clone(&service);
    std::thread::spawn(move || serve_listener_sharded(serve, listener, shards));
    (service, addr)
}

/// A line-protocol client over real TCP.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect loopback");
        // A command is written as several small chunks; without nodelay,
        // Nagle + delayed ACK turns every round trip into ~40ms.
        stream.set_nodelay(true).expect("nodelay");
        let writer = stream.try_clone().unwrap();
        let mut client = Client {
            writer,
            reader: BufReader::new(stream),
        };
        let banner = client.read_line();
        assert!(banner.starts_with("OK annod ready"), "{banner}");
        client
    }

    fn read_line(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read reply");
        line
    }

    fn cmd(&mut self, line: &str) -> String {
        writeln!(self.writer, "{line}").expect("send command");
        self.read_line()
    }

    fn cmd_block(&mut self, line: &str) -> Vec<String> {
        writeln!(self.writer, "{line}").expect("send command");
        let mut block = Vec::new();
        loop {
            let reply = self.read_line();
            let done = reply.trim_end() == ".";
            block.push(reply);
            if done {
                return block;
            }
        }
    }
}

/// Open `name` and give it a small mined snapshot so `rules` has
/// something to return.
fn seed_interactive(client: &mut Client, name: &str) {
    assert!(client
        .cmd(&format!("open {name} 0.4 0.7"))
        .starts_with("OK open"));
    for _ in 0..3 {
        assert!(client
            .cmd(&format!("row {name} 28 85 Annot_1"))
            .starts_with("OK queued"));
    }
    assert!(client
        .cmd(&format!("row {name} 28 85"))
        .starts_with("OK queued"));
    assert!(client.cmd(&format!("mine {name}")).starts_with("OK mined"));
}

fn round_trip(c: &mut Criterion) {
    let (_service, addr) = start_sharded(2);
    let mut client = Client::connect(addr);
    seed_interactive(&mut client, "db");

    let mut group = c.benchmark_group("serve_round_trip/2shards");
    group.bench_function("ping", |b| {
        b.iter(|| assert!(client.cmd("ping").starts_with("OK pong")))
    });
    let mut i = 0u64;
    group.bench_function("row_queued", |b| {
        b.iter(|| {
            i += 1;
            assert!(client
                .cmd(&format!("row db {} {} Annot_1", i % 997, (i * 7) % 997))
                .starts_with("OK queued"));
        })
    });
    group.bench_function("rules_top5", |b| {
        b.iter(|| {
            let block = client.cmd_block("rules db top 5");
            assert!(block[0].starts_with("OK"), "{block:?}");
        })
    });
    group.finish();
}

/// One bulk loader: pipeline `ops` writes at `ds` in windows of
/// [`PIPELINE`], counting `ERR overloaded` sheds. Returns (replies, sheds).
fn bulk_loader(addr: SocketAddr, ds: String, ops: usize) -> (u64, u64) {
    let mut client = Client::connect(addr);
    let (mut replies, mut sheds) = (0u64, 0u64);
    let mut sent = 0usize;
    while sent < ops {
        let batch = PIPELINE.min(ops - sent);
        for i in sent..sent + batch {
            writeln!(
                client.writer,
                "row {ds} {} {} Bulk_1",
                i % 9973,
                (i * 13 + 1) % 9973
            )
            .expect("flood write");
        }
        sent += batch;
        for _ in 0..batch {
            let reply = client.read_line();
            replies += 1;
            if reply.starts_with("ERR overloaded") {
                sheds += 1;
            }
        }
    }
    assert!(client.cmd("quit").starts_with("OK bye"));
    (replies, sheds)
}

fn flood(_c: &mut Criterion) {
    // K tenants × M clients: half the tenants interactive (mined, queried
    // throughout), half bulk (small caps, flooded).
    let (interactive_tenants, bulk_tenants, loaders_per_bulk, queriers, ops_per_loader, queries) =
        if quick() {
            (1usize, 1usize, 2usize, 1usize, 2_000usize, 200usize)
        } else {
            (2, 2, 2, 2, 8_000, 400)
        };
    let tenants = interactive_tenants + bulk_tenants;
    let clients = bulk_tenants * loaders_per_bulk + queriers;
    let label = format!("serve_flood/{tenants}tx{clients}c");

    let (service, addr) = start_sharded(2);
    let mut setup = Client::connect(addr);
    for t in 0..interactive_tenants {
        seed_interactive(&mut setup, &format!("fg{t}"));
    }
    let mut bulk_handles: Vec<Arc<Dataset>> = Vec::new();
    for t in 0..bulk_tenants {
        let name = format!("bulk{t}");
        assert!(setup
            .cmd(&format!("open {name} 0.4 0.7"))
            .starts_with("OK open"));
        assert!(setup
            .cmd(&format!("class {name} bulk"))
            .starts_with(&format!("OK class {name} bulk")));
        let ds = service.get(&name).unwrap();
        ds.set_queue_cap(BULK_CAP);
        bulk_handles.push(ds);
    }

    // Sample every bulk tenant's queue depth for the whole flood: the
    // bounded-queue invariant is that no sample ever exceeds the cap.
    let done = Arc::new(AtomicBool::new(false));
    let max_depths: Vec<Arc<AtomicU64>> = bulk_handles
        .iter()
        .map(|_| Arc::new(AtomicU64::new(0)))
        .collect();
    let sampler = {
        let handles = bulk_handles.clone();
        let done = Arc::clone(&done);
        let maxes = max_depths.clone();
        std::thread::spawn(move || {
            while !done.load(Ordering::SeqCst) {
                for (ds, max) in handles.iter().zip(&maxes) {
                    max.fetch_max(ds.observability().queue_depth, Ordering::SeqCst);
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        })
    };

    let flood_start = Instant::now();
    let loaders: Vec<_> = (0..bulk_tenants)
        .flat_map(|t| (0..loaders_per_bulk).map(move |_| format!("bulk{t}")))
        .map(|ds| std::thread::spawn(move || bulk_loader(addr, ds, ops_per_loader)))
        .collect();

    // Interactive clients query mined tenants while the flood rages.
    let querier_handles: Vec<_> = (0..queriers)
        .map(|q| {
            let fg = format!("fg{}", q % interactive_tenants);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr);
                let mut latencies = Vec::with_capacity(queries);
                for _ in 0..queries {
                    let start = Instant::now();
                    let block = client.cmd_block(&format!("rules {fg} top 5"));
                    assert!(block[0].starts_with("OK"), "{block:?}");
                    latencies.push(start.elapsed());
                }
                latencies
            })
        })
        .collect();

    let mut latencies: Vec<Duration> = Vec::new();
    for handle in querier_handles {
        latencies.extend(handle.join().expect("querier"));
    }
    let (mut replies, mut sheds) = (0u64, 0u64);
    for handle in loaders {
        let (r, s) = handle.join().expect("loader");
        replies += r;
        sheds += s;
    }
    let flood_wall = flood_start.elapsed();
    done.store(true, Ordering::SeqCst);
    sampler.join().unwrap();

    let total_ops = (bulk_tenants * loaders_per_bulk * ops_per_loader) as u64;
    assert_eq!(replies, total_ops, "every pipelined write is answered");

    latencies.sort_unstable();
    let p50 = latencies[latencies.len() / 2];
    let p99 = latencies[latencies.len() * 99 / 100];
    let stalls: u64 = bulk_handles
        .iter()
        .map(|ds| ds.observability().report.backpressure_stalls)
        .sum();

    // The two invariants the CI load-smoke job greps for.
    let mut worst_depth = 0u64;
    for (t, max) in max_depths.iter().enumerate() {
        let depth = max.load(Ordering::SeqCst);
        worst_depth = worst_depth.max(depth);
        assert!(
            depth <= BULK_CAP as u64,
            "bulk{t}: queue depth {depth} exceeded cap {BULK_CAP}"
        );
    }
    let bound = Duration::from_secs(1);
    assert!(
        p99 < bound,
        "interactive p99 {p99:?} blew past {bound:?} under bulk flood"
    );

    println!(
        "bench: {:<55} {:>12.2?}/iter  (n={})",
        format!("{label}/interactive_p50"),
        p50,
        latencies.len()
    );
    println!(
        "bench: {:<55} {:>12.2?}/iter  (n={})",
        format!("{label}/interactive_p99"),
        p99,
        latencies.len()
    );
    println!(
        "bench: {:<55} {:>12.2?}/iter  (n={total_ops})",
        format!("{label}/bulk_op"),
        flood_wall / u32::try_from(total_ops).unwrap_or(u32::MAX)
    );
    println!("serve_flood: queue_cap_respected=true max_depth={worst_depth} cap={BULK_CAP}");
    println!("serve_flood: interactive_p99_bounded=true p99={p99:.2?} bound={bound:?}");
    println!(
        "serve_flood: shed_ops={sheds} backpressure_stalls={stalls} flood_wall={flood_wall:.2?}"
    );
}

criterion_group!(benches, round_trip, flood);
criterion_main!(benches);
