//! E8 (ablation) — §4.3: "the system indexes the annotations such that
//! given a query annotation, we can efficiently find all data tuples having
//! this annotation."
//!
//! Compares the two operations the Fig. 13 discovery step needs —
//! annotation co-occurrence counting and pattern counting among tuples
//! carrying an annotation — with and without the inverted index.

use anno_bench::paper_workload;
use anno_mine::ItemSet;
use anno_store::Item;
use criterion::{criterion_group, criterion_main, Criterion};

fn index_ablation(c: &mut Criterion) {
    let ds = paper_workload();
    let rel = ds.relation;
    // Pick the two most frequent annotations and a planted data pattern.
    let mut anns: Vec<(Item, usize)> = rel
        .index()
        .annotations()
        .map(|a| (a, rel.index().frequency(a)))
        .collect();
    anns.sort_by_key(|&(_, f)| std::cmp::Reverse(f));
    let (a1, _) = anns[0];
    let (a2, _) = anns[1];
    let pattern = ItemSet::from_unsorted(ds.planted[0].lhs.clone());

    let mut group = c.benchmark_group("index");

    // Annotation co-occurrence: |tuples ∋ a1 ∧ a2|.
    group.bench_function("cooccurrence_indexed_bitsets", |b| {
        b.iter(|| rel.index().co_occurrence(&[a1, a2]))
    });
    group.bench_function("cooccurrence_full_scan", |b| {
        b.iter(|| {
            rel.iter()
                .filter(|(_, t)| t.contains(a1) && t.contains(a2))
                .count()
        })
    });

    // Pattern frequency among tuples with annotation a1 (Fig. 13 Step 1).
    group.bench_function("pattern_given_annotation_indexed", |b| {
        b.iter(|| {
            rel.tuples_with(a1)
                .filter(|(_, t)| pattern.matches(t))
                .count()
        })
    });
    group.bench_function("pattern_given_annotation_full_scan", |b| {
        b.iter(|| {
            rel.iter()
                .filter(|(_, t)| t.contains(a1) && pattern.matches(t))
                .count()
        })
    });

    group.finish();
}

criterion_group!(benches, index_ablation);
criterion_main!(benches);
