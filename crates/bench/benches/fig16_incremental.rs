//! E1 — Fig. 16: run time of incrementally updating + discovering rules
//! vs. re-running Apriori over the whole database after each change.
//!
//! Paper setup: ≈8000 entries, minimum support 0.4, minimum confidence 0.8;
//! the paper reports ~12 s per full Apriori pass in its Java implementation
//! vs near-instant incremental updates. Absolute numbers differ here (this
//! is optimized Rust); the *shape* to reproduce is full re-mine ≫
//! incremental, for every case.

use anno_bench::{fig16_setup, paper_thresholds};
use anno_mine::mine_rules;
use anno_store::{random_annotated_tuples, random_unannotated_tuples};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fig16(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig16");
    group.sample_size(10);

    // The baseline the paper compares against: full Apriori re-run.
    let setup = fig16_setup(1, 400);
    group.bench_function("full_apriori_remine", |b| {
        b.iter(|| mine_rules(&setup.relation, &paper_thresholds()))
    });

    // Case 3 (the paper's contribution): apply an annotation batch.
    for batch_size in [100usize, 400, 800] {
        let setup = fig16_setup(1, batch_size);
        group.bench_function(format!("case3_incremental_{batch_size}"), |b| {
            b.iter_batched(
                || {
                    (
                        setup.miner.clone(),
                        setup.relation.clone(),
                        setup.batches[0].clone(),
                    )
                },
                |(mut miner, mut rel, batch)| miner.apply_annotations(&mut rel, batch),
                BatchSize::LargeInput,
            )
        });
    }

    // Case 1: add annotated tuples.
    let setup = fig16_setup(1, 1);
    let mut rel_for_gen = setup.relation.clone();
    let mut rng = StdRng::seed_from_u64(42);
    let annotated = random_annotated_tuples(&mut rel_for_gen, &mut rng, 200, 8);
    group.bench_function("case1_incremental_200", |b| {
        b.iter_batched(
            || {
                (
                    setup.miner.clone(),
                    setup.relation.clone(),
                    annotated.clone(),
                )
            },
            |(mut miner, mut rel, tuples)| miner.add_annotated_tuples(&mut rel, tuples),
            BatchSize::LargeInput,
        )
    });

    // Case 2: add un-annotated tuples.
    let plain = random_unannotated_tuples(&mut rel_for_gen, &mut rng, 200, 8);
    group.bench_function("case2_incremental_200", |b| {
        b.iter_batched(
            || (setup.miner.clone(), setup.relation.clone(), plain.clone()),
            |(mut miner, mut rel, tuples)| miner.add_unannotated_tuples(&mut rel, tuples),
            BatchSize::LargeInput,
        )
    });

    group.finish();
}

criterion_group!(benches, fig16);
criterion_main!(benches);
