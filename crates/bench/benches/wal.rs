//! Write-ahead-log benchmarks: what durability costs per drain, and what
//! recovery costs per tuple.
//!
//! Four questions, alongside the publish numbers in `benches/publish.rs`
//! (recorded in `BENCH_wal.json` at the workspace root):
//!
//! * **Raw append latency** — one framed record + flush (and fsync, in
//!   the sync variant) per drain, the group-commit unit. Periodic
//!   checkpoints inside the loop keep the disk footprint bounded; their
//!   amortized cost rides along, as it does in production.
//! * **Drain latency, memory vs. durable** — the same effective
//!   256-update annotate/remove drain through a mined 10k-tuple dataset
//!   with and without the WAL in the writer path: the end-to-end price
//!   of durability per drain, miner maintenance and publish included.
//! * **Multi-tenant durable throughput** — 8 concurrent durable tenants
//!   streaming paced effective drains, per-dataset fsync vs. one shared
//!   [`GroupCommitter`]: the fsyncs-per-drain number that motivates
//!   cross-dataset group commit (each mode also prints its measured
//!   `fsyncs_per_drain`).
//! * **Recovery throughput** — `Dataset::open` against a directory
//!   holding 10k/100k/1M tuples, once as pure log-tail replay (every
//!   insert drain re-parsed and re-applied) and once from a checkpoint
//!   (snapshot restore, empty tail) — the number that justifies
//!   checkpoint compaction.
//!
//! Set `ANNO_BENCH_QUICK=1` (the CI bench smoke gate does) to shrink
//! sizes so every group still runs end to end in seconds.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use anno_mine::{IncrementalConfig, Thresholds};
use anno_service::{Dataset, DurabilityOptions, GroupCommitter, SyncPolicy, UpdateOp};
use anno_store::TupleId;
use anno_wal::{Wal, WalOptions};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn quick() -> bool {
    std::env::var_os("ANNO_BENCH_QUICK").is_some()
}

fn bench_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("anno-wal-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config() -> IncrementalConfig {
    IncrementalConfig {
        thresholds: Thresholds::new(0.4, 0.8),
        ..Default::default()
    }
}

/// Fig. 4-style rows: two data values from a ~1000-name space, every
/// tenth row carrying an annotation, so logs and snapshots have
/// realistic shape.
fn row(i: usize) -> String {
    if i % 10 == 0 {
        format!("{} {} Seed", i % 997, (i * 7 + 1) % 997)
    } else {
        format!("{} {}", i % 997, (i * 7 + 1) % 997)
    }
}

/// Load `n` tuples into `ds` in coalescible chunks and wait for publish.
fn load(ds: &Dataset, n: usize) {
    for chunk_start in (0..n).step_by(8192) {
        let lines: Vec<String> = (chunk_start..(chunk_start + 8192).min(n))
            .map(row)
            .collect();
        ds.enqueue(UpdateOp::InsertRows(lines)).unwrap();
    }
    ds.flush().unwrap();
}

fn append_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal_append");
    // ≈ the encoded size of a 256-update annotate drain.
    let payload = vec![0xA5u8; 4096];
    for (label, sync) in [
        ("sync", SyncPolicy::PerAppend),
        ("nosync", SyncPolicy::Never),
    ] {
        let dir = bench_dir(&format!("append-{label}"));
        let (mut wal, _) = Wal::open(
            &dir,
            WalOptions {
                sync,
                ..WalOptions::default()
            },
        )
        .unwrap();
        let mut appended = 0u64;
        group.bench_function(BenchmarkId::new("drain_4KiB", label), |b| {
            b.iter(|| {
                wal.append(&payload).unwrap();
                appended += 1;
                // Compact periodically so an unbounded iteration count
                // cannot grow the log without bound.
                if appended % 8192 == 0 {
                    wal.checkpoint(b"bench state").unwrap();
                }
            })
        });
        drop(wal);
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

fn durable_drain_latency(c: &mut Criterion) {
    // The dataset size is in the group name: quick-mode runs measure a
    // smaller workload and must not compare against full-size claims.
    let n: usize = if quick() { 2_000 } else { 10_000 };
    let mut group = c.benchmark_group(format!("wal_drain/{n}"));
    for durable in [false, true] {
        let label = if durable { "durable_sync" } else { "memory" };
        let dir = bench_dir("drain");
        let ds = if durable {
            Dataset::open("bench", config(), &dir).unwrap()
        } else {
            Dataset::spawn("bench", config()).unwrap()
        };
        load(&ds, n);
        ds.mine().unwrap();
        // 256 scattered tuples, none Seed-annotated; toggling one known
        // annotation keeps every drain effective without growing state
        // or the vocabulary.
        let targets: Vec<TupleId> = (0..256u32).map(|i| TupleId(i * 39 + 1)).collect();
        let mut attach = true;
        group.bench_function(BenchmarkId::new("annotate_256", label), |b| {
            b.iter(|| {
                let named: Vec<(TupleId, String)> =
                    targets.iter().map(|&t| (t, "Seed".to_string())).collect();
                let op = if attach {
                    UpdateOp::AnnotateNamed(named)
                } else {
                    UpdateOp::RemoveNamed(named)
                };
                attach = !attach;
                ds.enqueue(op).unwrap();
                ds.flush().unwrap();
            })
        });
        drop(ds);
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

/// 8 concurrent durable tenants, each streaming paced effective
/// single-annotation drains, then one flush barrier per tenant — once
/// with per-dataset fsync (every drain pays its own), once through one
/// shared `GroupCommitter` with a 4 ms sync window (drains pipeline
/// behind the window and every dirty file is synced once per window).
/// Alongside the criterion wall time per round, each mode prints its
/// measured `fsyncs_per_drain` — the number `BENCH_wal.json` records.
fn group_commit_throughput(c: &mut Criterion) {
    let tenants: usize = if quick() { 4 } else { 8 };
    let ops_per_round: u32 = if quick() { 8 } else { 16 };
    let pace = Duration::from_micros(150);
    // Workload shape in the group name, for the same quick-vs-claims
    // honesty as above.
    let mut group = c.benchmark_group(format!("wal_group_commit/{tenants}x{ops_per_round}"));
    group.sample_size(10);
    for mode in ["per_dataset", "grouped"] {
        // Declared before the datasets so it outlives their WALs.
        let committer = Arc::new(GroupCommitter::with_window(Duration::from_millis(4)));
        let dirs: Vec<PathBuf> = (0..tenants)
            .map(|i| bench_dir(&format!("group-{mode}-{i}")))
            .collect();
        let datasets: Vec<Dataset> = dirs
            .iter()
            .map(|dir| {
                let sync = match mode {
                    "grouped" => SyncPolicy::Grouped(Arc::clone(&committer)),
                    _ => SyncPolicy::PerAppend,
                };
                let options = DurabilityOptions {
                    wal: WalOptions {
                        sync,
                        ..WalOptions::default()
                    },
                    ..DurabilityOptions::default()
                };
                let ds = Dataset::open_with("bench", config(), dir, options).unwrap();
                load(&ds, 2_000);
                ds.mine().unwrap();
                ds
            })
            .collect();
        // Unannotated targets (load() seeds every 10th tuple), so an
        // attach round is always effective and so is the remove after it.
        let targets: Vec<TupleId> = (0..)
            .map(|i| TupleId(i * 3 + 1))
            .filter(|t| t.0 % 10 != 0)
            .take(ops_per_round as usize)
            .collect();
        let round = AtomicU64::new(0);
        let (drains0, syncs0) = tally(&datasets, &committer);
        group.bench_function(BenchmarkId::new("round", mode), |b| {
            b.iter(|| {
                let attach = round.fetch_add(1, Ordering::Relaxed) % 2 == 0;
                std::thread::scope(|s| {
                    for ds in &datasets {
                        let targets = &targets;
                        s.spawn(move || {
                            for &t in targets {
                                let named = vec![(t, "Seed".to_string())];
                                let op = if attach {
                                    UpdateOp::AnnotateNamed(named)
                                } else {
                                    UpdateOp::RemoveNamed(named)
                                };
                                ds.enqueue(op).unwrap();
                                // Pace the stream so the writer takes
                                // several passes (= several log records)
                                // per round instead of coalescing the
                                // whole round into one batch.
                                std::thread::sleep(pace);
                            }
                            ds.flush().unwrap();
                        });
                    }
                });
            })
        });
        let (drains1, syncs1) = tally(&datasets, &committer);
        let (drains, syncs) = (drains1 - drains0, syncs1 - syncs0);
        println!(
            "wal_group_commit/fsyncs_per_drain/{mode}: {:.3} (fsyncs={syncs} drains={drains}, \
             {tenants} tenants)",
            syncs as f64 / drains.max(1) as f64
        );
        drop(datasets);
        for dir in &dirs {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
    group.finish();
}

/// Total logged drains and fsyncs across `datasets`: inline WAL syncs
/// (per-append fsyncs + segment seals) plus the shared committer's.
fn tally(datasets: &[Dataset], committer: &GroupCommitter) -> (u64, u64) {
    let mut drains = 0u64;
    let mut syncs = committer.stats().syncs;
    for ds in datasets {
        let ws = ds.wal_stats().unwrap();
        drains += ws.appends;
        syncs += ws.syncs;
    }
    (drains, syncs)
}

fn recovery_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal_recovery");
    group.sample_size(10);
    let sizes: &[usize] = if quick() {
        &[10_000]
    } else {
        &[10_000, 100_000, 1_000_000]
    };
    for &n in sizes {
        let dir = bench_dir(&format!("recovery-{n}"));
        {
            let ds = Dataset::open("bench", config(), &dir).unwrap();
            load(&ds, n);
        }
        // Pure log-tail replay: every insert drain is re-parsed and
        // re-applied on open.
        group.bench_function(BenchmarkId::new("replay", n), |b| {
            b.iter(|| {
                let ds = Dataset::open("bench", config(), &dir).unwrap();
                assert_eq!(ds.live_tuples(), n);
                drop(ds);
            })
        });
        // Checkpoint restore: same state, snapshot-restored, empty tail.
        {
            let ds = Dataset::open("bench", config(), &dir).unwrap();
            ds.checkpoint().unwrap();
        }
        group.bench_function(BenchmarkId::new("checkpoint_restore", n), |b| {
            b.iter(|| {
                let ds = Dataset::open("bench", config(), &dir).unwrap();
                assert_eq!(ds.live_tuples(), n);
                drop(ds);
            })
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    // The case checkpoints exist for: a *mined* dataset whose log holds a
    // mine event plus a stream of maintenance drains. Replay re-runs the
    // full initial mine and every incremental batch; a checkpoint restores
    // the miner's table directly.
    let mined_config = IncrementalConfig {
        thresholds: Thresholds::new(0.08, 0.5),
        ..Default::default()
    };
    let dir = bench_dir("recovery-mined");
    let mined_drains: u32 = if quick() { 32 } else { 128 };
    {
        let ds = Dataset::open("bench", mined_config, &dir).unwrap();
        load(&ds, if quick() { 2_000 } else { 10_000 });
        ds.mine().unwrap();
        let targets: Vec<TupleId> = (0..64u32).map(|i| TupleId(i * 39 + 1)).collect();
        for round in 0..mined_drains {
            let named: Vec<(TupleId, String)> =
                targets.iter().map(|&t| (t, "Seed".to_string())).collect();
            let op = if round % 2 == 0 {
                UpdateOp::AnnotateNamed(named)
            } else {
                UpdateOp::RemoveNamed(named)
            };
            ds.enqueue(op).unwrap();
            ds.flush().unwrap();
        }
    }
    group.bench_function(BenchmarkId::new("replay_mined_drains", mined_drains), |b| {
        b.iter(|| {
            let ds = Dataset::open("bench", mined_config, &dir).unwrap();
            assert!(ds.is_mined());
            drop(ds);
        })
    });
    {
        let ds = Dataset::open("bench", mined_config, &dir).unwrap();
        ds.checkpoint().unwrap();
    }
    group.bench_function(
        BenchmarkId::new("checkpoint_restore_mined_drains", mined_drains),
        |b| {
            b.iter(|| {
                let ds = Dataset::open("bench", mined_config, &dir).unwrap();
                assert!(ds.is_mined());
                drop(ds);
            })
        },
    );
    let _ = std::fs::remove_dir_all(&dir);
    group.finish();
}

criterion_group!(
    benches,
    append_latency,
    durable_drain_latency,
    group_commit_throughput,
    recovery_throughput
);
criterion_main!(benches);
