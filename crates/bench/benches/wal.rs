//! Write-ahead-log benchmarks: what durability costs per drain, and what
//! recovery costs per tuple.
//!
//! Three questions, alongside the publish numbers in `benches/publish.rs`
//! (recorded in `BENCH_wal.json` at the workspace root):
//!
//! * **Raw append latency** — one framed record + flush (and fsync, in
//!   the sync variant) per drain, the group-commit unit. Periodic
//!   checkpoints inside the loop keep the disk footprint bounded; their
//!   amortized cost rides along, as it does in production.
//! * **Drain latency, memory vs. durable** — the same effective
//!   256-update annotate/remove drain through a mined 10k-tuple dataset
//!   with and without the WAL in the writer path: the end-to-end price
//!   of durability per drain, miner maintenance and publish included.
//! * **Recovery throughput** — `Dataset::open` against a directory
//!   holding 10k/100k/1M tuples, once as pure log-tail replay (every
//!   insert drain re-parsed and re-applied) and once from a checkpoint
//!   (snapshot restore, empty tail) — the number that justifies
//!   checkpoint compaction.

use std::path::PathBuf;

use anno_mine::{IncrementalConfig, Thresholds};
use anno_service::{Dataset, UpdateOp};
use anno_store::TupleId;
use anno_wal::{Wal, WalOptions};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("anno-wal-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config() -> IncrementalConfig {
    IncrementalConfig {
        thresholds: Thresholds::new(0.4, 0.8),
        ..Default::default()
    }
}

/// Fig. 4-style rows: two data values from a ~1000-name space, every
/// tenth row carrying an annotation, so logs and snapshots have
/// realistic shape.
fn row(i: usize) -> String {
    if i % 10 == 0 {
        format!("{} {} Seed", i % 997, (i * 7 + 1) % 997)
    } else {
        format!("{} {}", i % 997, (i * 7 + 1) % 997)
    }
}

/// Load `n` tuples into `ds` in coalescible chunks and wait for publish.
fn load(ds: &Dataset, n: usize) {
    for chunk_start in (0..n).step_by(8192) {
        let lines: Vec<String> = (chunk_start..(chunk_start + 8192).min(n))
            .map(row)
            .collect();
        ds.enqueue(UpdateOp::InsertRows(lines)).unwrap();
    }
    ds.flush().unwrap();
}

fn append_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal_append");
    // ≈ the encoded size of a 256-update annotate drain.
    let payload = vec![0xA5u8; 4096];
    for (label, sync) in [("sync", true), ("nosync", false)] {
        let dir = bench_dir(&format!("append-{label}"));
        let (mut wal, _) = Wal::open(
            &dir,
            WalOptions {
                sync,
                ..WalOptions::default()
            },
        )
        .unwrap();
        let mut appended = 0u64;
        group.bench_function(BenchmarkId::new("drain_4KiB", label), |b| {
            b.iter(|| {
                wal.append(&payload).unwrap();
                appended += 1;
                // Compact periodically so an unbounded iteration count
                // cannot grow the log without bound.
                if appended % 8192 == 0 {
                    wal.checkpoint(b"bench state").unwrap();
                }
            })
        });
        drop(wal);
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

fn durable_drain_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal_drain");
    for durable in [false, true] {
        let label = if durable { "durable_sync" } else { "memory" };
        let dir = bench_dir("drain");
        let ds = if durable {
            Dataset::open("bench", config(), &dir).unwrap()
        } else {
            Dataset::spawn("bench", config()).unwrap()
        };
        load(&ds, 10_000);
        ds.mine().unwrap();
        // 256 scattered tuples, none Seed-annotated; toggling one known
        // annotation keeps every drain effective without growing state
        // or the vocabulary.
        let targets: Vec<TupleId> = (0..256u32).map(|i| TupleId(i * 39 + 1)).collect();
        let mut attach = true;
        group.bench_function(BenchmarkId::new("annotate_256", label), |b| {
            b.iter(|| {
                let named: Vec<(TupleId, String)> =
                    targets.iter().map(|&t| (t, "Seed".to_string())).collect();
                let op = if attach {
                    UpdateOp::AnnotateNamed(named)
                } else {
                    UpdateOp::RemoveNamed(named)
                };
                attach = !attach;
                ds.enqueue(op).unwrap();
                ds.flush().unwrap();
            })
        });
        drop(ds);
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

fn recovery_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal_recovery");
    group.sample_size(10);
    for &n in &[10_000usize, 100_000, 1_000_000] {
        let dir = bench_dir(&format!("recovery-{n}"));
        {
            let ds = Dataset::open("bench", config(), &dir).unwrap();
            load(&ds, n);
        }
        // Pure log-tail replay: every insert drain is re-parsed and
        // re-applied on open.
        group.bench_function(BenchmarkId::new("replay", n), |b| {
            b.iter(|| {
                let ds = Dataset::open("bench", config(), &dir).unwrap();
                assert_eq!(ds.live_tuples(), n);
                drop(ds);
            })
        });
        // Checkpoint restore: same state, snapshot-restored, empty tail.
        {
            let ds = Dataset::open("bench", config(), &dir).unwrap();
            ds.checkpoint().unwrap();
        }
        group.bench_function(BenchmarkId::new("checkpoint_restore", n), |b| {
            b.iter(|| {
                let ds = Dataset::open("bench", config(), &dir).unwrap();
                assert_eq!(ds.live_tuples(), n);
                drop(ds);
            })
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    // The case checkpoints exist for: a *mined* dataset whose log holds a
    // mine event plus a stream of maintenance drains. Replay re-runs the
    // full initial mine and every incremental batch; a checkpoint restores
    // the miner's table directly.
    let mined_config = IncrementalConfig {
        thresholds: Thresholds::new(0.08, 0.5),
        ..Default::default()
    };
    let dir = bench_dir("recovery-mined");
    {
        let ds = Dataset::open("bench", mined_config, &dir).unwrap();
        load(&ds, 10_000);
        ds.mine().unwrap();
        let targets: Vec<TupleId> = (0..64u32).map(|i| TupleId(i * 39 + 1)).collect();
        for round in 0..128u32 {
            let named: Vec<(TupleId, String)> =
                targets.iter().map(|&t| (t, "Seed".to_string())).collect();
            let op = if round % 2 == 0 {
                UpdateOp::AnnotateNamed(named)
            } else {
                UpdateOp::RemoveNamed(named)
            };
            ds.enqueue(op).unwrap();
            ds.flush().unwrap();
        }
    }
    group.bench_function(BenchmarkId::new("replay_mined_128_drains", 10_000), |b| {
        b.iter(|| {
            let ds = Dataset::open("bench", mined_config, &dir).unwrap();
            assert!(ds.is_mined());
            drop(ds);
        })
    });
    {
        let ds = Dataset::open("bench", mined_config, &dir).unwrap();
        ds.checkpoint().unwrap();
    }
    group.bench_function(BenchmarkId::new("checkpoint_restore_mined", 10_000), |b| {
        b.iter(|| {
            let ds = Dataset::open("bench", mined_config, &dir).unwrap();
            assert!(ds.is_mined());
            drop(ds);
        })
    });
    let _ = std::fs::remove_dir_all(&dir);
    group.finish();
}

criterion_group!(
    benches,
    append_latency,
    durable_drain_latency,
    recovery_throughput
);
criterion_main!(benches);
