//! Observability-cost benchmarks: what instrumentation charges the hot
//! path, and what a scrape charges the service.
//!
//! Three questions (recorded in `BENCH_metrics.json` at the workspace
//! root):
//!
//! * **Recording overhead** — one `Histogram::record` (two relaxed
//!   `fetch_add`s after a log-linear bucket index) and one `Gauge::set`
//!   in a tight loop (batches of 64 per timed iteration, so the clock
//!   read does not drown the operation), single-threaded and with 4
//!   contending threads. The acceptance bar is <30 ns per record: cheap
//!   enough to leave on in every writer drain and query.
//! * **Snapshot cost** — freezing one 496-bucket histogram into a
//!   [`HistogramSnapshot`], the unit of work a scrape pays per series.
//! * **Scrape cost** — `render_prometheus` against a service holding 8
//!   mined datasets with recorded traffic: the full text exposition a
//!   `GET /metrics` poll renders, per-dataset histograms, quantiles and
//!   windowed rates included.
//!
//! Set `ANNO_BENCH_QUICK=1` (the CI bench smoke gate does) to shrink
//! sizes so every group still runs end to end in seconds.

use std::sync::Arc;

use anno_metrics::{Gauge, Histogram};
use anno_mine::Thresholds;
use anno_service::{render_prometheus, Engine, Service, ServiceConfig, UpdateOp};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn quick() -> bool {
    std::env::var_os("ANNO_BENCH_QUICK").is_some()
}

fn record_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics_record");
    group.sample_size(if quick() { 10 } else { 50 });

    // The harness reads the clock once per iteration, which alone costs
    // more than one record; batching 64 records per iteration amortizes
    // that away, so divide the reported value by 64 for the per-record
    // cost (BENCH_metrics.json records both).
    let hist = Histogram::new();
    let mut value = 1u64;
    group.bench_function("histogram_record_x64", |b| {
        b.iter(|| {
            for _ in 0..64 {
                // Walk a spread of magnitudes so bucket indexing is not
                // branch-predicted into a single bucket.
                value = value.wrapping_mul(6364136223846793005).wrapping_add(1);
                hist.record(black_box(value >> 40));
            }
        })
    });

    let gauge = Gauge::new();
    let mut depth = 0u64;
    group.bench_function("gauge_set_x64", |b| {
        b.iter(|| {
            for _ in 0..64 {
                depth = (depth + 7) % 1024;
                gauge.set(black_box(depth));
            }
        })
    });

    // 4 contending threads hammer one histogram; the measured routine is
    // one record from the calling thread under that contention — the
    // worst case a drain pays while queries record on other cores.
    let contended = Arc::new(Histogram::new());
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let writers: Vec<_> = (0..3)
        .map(|t| {
            let hist = Arc::clone(&contended);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut v = 1u64 + t;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    v = v.wrapping_mul(6364136223846793005).wrapping_add(t);
                    hist.record(v >> 40);
                }
            })
        })
        .collect();
    let mut v = 99u64;
    group.bench_function("histogram_record_contended_4t_x64", |b| {
        b.iter(|| {
            for _ in 0..64 {
                v = v.wrapping_mul(6364136223846793005).wrapping_add(99);
                contended.record(black_box(v >> 40));
            }
        })
    });
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for w in writers {
        w.join().unwrap();
    }

    group.bench_function("histogram_snapshot", |b| {
        b.iter(|| black_box(hist.snapshot().count()))
    });
    group.finish();
}

/// Fig. 4-style rows: two data values, every tenth row annotated.
fn row(i: usize) -> String {
    if i % 10 == 0 {
        format!("{} {} Seed", i % 97, (i * 7 + 1) % 97)
    } else {
        format!("{} {}", i % 97, (i * 7 + 1) % 97)
    }
}

fn scrape_cost(c: &mut Criterion) {
    const DATASETS: usize = 8;
    let tuples = if quick() { 200 } else { 2000 };

    let service = Arc::new(Service::new());
    let engine = Engine::new(Arc::clone(&service));
    for d in 0..DATASETS {
        let ds = service
            .create(
                &format!("ds{d}"),
                ServiceConfig {
                    thresholds: Thresholds::new(0.3, 0.8),
                    ..Default::default()
                },
            )
            .unwrap();
        ds.enqueue(UpdateOp::InsertRows((0..tuples).map(row).collect()))
            .unwrap();
        ds.flush().unwrap();
        ds.mine().unwrap();
        // Populate the query/drain histograms and the ring so the scrape
        // renders realistic series, windowed rates included.
        for _ in 0..32 {
            let reply = engine.execute(&format!("rules ds{d} top 5"));
            assert!(reply.lines[0].starts_with("OK"), "{:?}", reply.lines);
        }
    }
    service.sample_now();
    std::thread::sleep(std::time::Duration::from_millis(5));
    service.sample_now();

    let mut group = c.benchmark_group("metrics_scrape");
    group.sample_size(if quick() { 10 } else { 30 });
    group.bench_function("render_prometheus_8ds", |b| {
        b.iter(|| black_box(render_prometheus(&service).len()))
    });

    let text = render_prometheus(&service);
    eprintln!(
        "metrics_scrape: exposition is {} bytes, {} lines at {DATASETS} datasets",
        text.len(),
        text.lines().count()
    );
    group.finish();
}

criterion_group!(benches, record_overhead, scrape_cost);
criterion_main!(benches);
