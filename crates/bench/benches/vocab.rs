//! Vocabulary interner benchmark: insert-heavy drains, monolithic vs
//! persistent.
//!
//! The paper's annotation model assumes an open universe of names, so
//! real ingest traffic keeps interning names the vocabulary has never
//! seen. Before the persistent interner, `Vocabulary` was a flat
//! `Vec<String>` + `HashMap<String, u32>` per namespace behind one `Arc`:
//! with a published snapshot holding the second reference, the first
//! intern of every drain deep-copied the whole table (every name twice —
//! vector and map keys), O(#distinct names) per drain.
//! `monolithic_drain` reproduces exactly that work. The chunked-arena +
//! HAMT interner makes the same drain pay only the spine clone, one tail
//! chunk, and the touched index paths — `persistent_drain`.
//!
//! The claim under test (ISSUE 4 acceptance): interning a fixed-size
//! batch of fresh names with a snapshot outstanding costs
//! delta-proportional work, not O(#distinct names) — ≥100× less copied
//! vocabulary bytes (reported by the sharing meters after the timed
//! runs) or ≥10× drain latency at 100k names. Numbers are recorded in
//! `BENCH_vocab.json` at the workspace root.
//!
//! Set `ANNO_BENCH_QUICK=1` (the CI bench smoke gate does) to run the
//! small size only.

use std::collections::HashMap;

use anno_store::{ItemKind, Vocabulary};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

/// Fresh names interned per simulated drain.
const DRAIN_FRESH: usize = 256;

/// The pre-change interner, reproduced: one flat table per namespace,
/// names stored twice (vector + map key), copied as a unit whenever a
/// snapshot shares it.
#[derive(Clone, Default)]
struct MonolithicVocab {
    names: Vec<String>,
    lookup: HashMap<String, u32>,
}

impl MonolithicVocab {
    fn intern(&mut self, name: &str) -> u32 {
        if let Some(&idx) = self.lookup.get(name) {
            return idx;
        }
        let idx = self.names.len() as u32;
        self.names.push(name.to_owned());
        self.lookup.insert(name.to_owned(), idx);
        idx
    }

    fn get(&self, name: &str) -> Option<u32> {
        self.lookup.get(name).copied()
    }

    /// Heap bytes a copy-on-write clone of this structure duplicates.
    fn heap_bytes(&self) -> usize {
        let name_bytes: usize = self.names.iter().map(String::len).sum();
        // Names live twice (vector + map keys); headers for both, plus
        // the map's value and bucket overhead (conservatively the entry
        // payload only — real hash-map metadata makes the old path
        // strictly worse).
        2 * name_bytes
            + 2 * self.names.len() * std::mem::size_of::<String>()
            + self.names.len() * std::mem::size_of::<u32>()
    }
}

fn sizes() -> Vec<usize> {
    if std::env::var_os("ANNO_BENCH_QUICK").is_some() {
        vec![10_000]
    } else {
        vec![10_000, 100_000]
    }
}

fn base_name(i: usize) -> String {
    format!("Annot_{i}")
}

fn fresh_name(j: usize) -> String {
    format!("Fresh_{j}")
}

fn vocab_drains(c: &mut Criterion) {
    for size in sizes() {
        let mut base = Vocabulary::new();
        let mut mono = MonolithicVocab::default();
        for i in 0..size {
            let name = base_name(i);
            base.annotation(&name);
            mono.intern(&name);
        }
        let fresh: Vec<String> = (0..DRAIN_FRESH).map(fresh_name).collect();
        let known: Vec<String> = (0..DRAIN_FRESH).map(|j| base_name(j * 31 % size)).collect();

        let mut group = c.benchmark_group(format!("vocab/{size}"));
        group.sample_size(30);

        // One insert-heavy drain with a published snapshot outstanding:
        // the old world pays a full deep copy (the clone) before the
        // first intern can proceed.
        group.bench_function(BenchmarkId::new("monolithic_drain", DRAIN_FRESH), |b| {
            b.iter(|| {
                let mut live = mono.clone();
                for name in &fresh {
                    live.intern(name);
                }
                black_box(live.names.len())
            })
        });

        // The persistent interner: spine clone + tail chunk + index
        // paths — delta-scale regardless of #distinct names.
        group.bench_function(BenchmarkId::new("persistent_drain", DRAIN_FRESH), |b| {
            b.iter(|| {
                let mut live = base.clone();
                for name in &fresh {
                    live.annotation(name);
                }
                black_box(live.count(ItemKind::Annotation))
            })
        });

        // Snapshot capture alone (the publish path's share of the cost).
        group.bench_function("monolithic_clone", |b| {
            b.iter(|| black_box(mono.clone().names.len()))
        });
        group.bench_function("persistent_clone", |b| {
            b.iter(|| black_box(base.clone().count(ItemKind::Annotation)))
        });

        // Read path: known-name resolution must not regress (the serving
        // layer's AnnotateNamed fast path leans on it).
        group.bench_function(BenchmarkId::new("monolithic_lookup", DRAIN_FRESH), |b| {
            b.iter(|| {
                let mut hits = 0usize;
                for name in &known {
                    hits += usize::from(mono.get(name).is_some());
                }
                black_box(hits)
            })
        });
        group.bench_function(BenchmarkId::new("persistent_lookup", DRAIN_FRESH), |b| {
            b.iter(|| {
                let mut hits = 0usize;
                for name in &known {
                    hits += usize::from(base.get(ItemKind::Annotation, name).is_some());
                }
                black_box(hits)
            })
        });
        group.finish();

        // Copied-bytes meter (not timed): what one insert-heavy drain
        // actually duplicated, old world vs new.
        let snap = base.clone();
        let mut live = base.clone();
        for name in &fresh {
            live.annotation(name);
        }
        let copied_new = live.unshared_bytes_with(&snap);
        let copied_old = mono.heap_bytes();
        println!(
            "meter: vocab/{size} copied bytes per {DRAIN_FRESH}-name drain: \
             monolithic {copied_old}  persistent {copied_new}  ratio {:.0}x",
            copied_old as f64 / copied_new.max(1) as f64
        );
    }
}

criterion_group!(benches, vocab_drains);
criterion_main!(benches);
