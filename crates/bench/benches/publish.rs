//! Publish-path benchmark: the cost of freezing a snapshot of the live
//! relation, old world vs. new.
//!
//! Before the persistent segment store, every effective drain paid one
//! full relation deep-clone (`Arc::make_mut` with the published snapshot
//! holding the second reference): every live tuple's `Vec<Item>` plus
//! every posting bitset, O(|D|) — `old_deep_clone` reproduces exactly
//! that work. The segment store makes publishing a persistent clone —
//! `publish_clone` — and the steady-state writer cost is *apply the
//! delta, then clone*, with copy-on-write bounded by the segments and
//! postings the delta touched — `publish_after_delta/<Δ>`.
//!
//! The claim under test (ISSUE 2 acceptance): publish latency grows with
//! the delta size, not with |D|. Numbers are recorded in
//! `BENCH_publish.json` at the workspace root.

use anno_store::{AnnotatedRelation, Item, Tuple, TupleId};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// Distinct data values; keeps the vocabulary |D|-independent so the
/// measurement isolates tuple/posting copying.
const DATA_VALUES: u32 = 1_000;
/// Pre-interned annotation namespace for delta generation.
const DELTA_ANNS: u32 = 64;

fn build_relation(tuples: usize) -> (AnnotatedRelation, Vec<Item>) {
    let mut rel = AnnotatedRelation::new("publish-bench");
    let data: Vec<Item> = (0..DATA_VALUES)
        .map(|i| rel.vocab_mut().data(&format!("d{i}")))
        .collect();
    let seed_ann = rel.vocab_mut().annotation("Seed");
    let delta_anns: Vec<Item> = (0..DELTA_ANNS)
        .map(|i| rel.vocab_mut().annotation(&format!("B{i}")))
        .collect();
    for i in 0..tuples {
        let a = data[i % DATA_VALUES as usize];
        let b = data[(i * 7 + 1) % DATA_VALUES as usize];
        // ~10% annotation density, so the posting bitsets are real.
        if i % 10 == 0 {
            rel.insert(Tuple::new([a, b], [seed_ann]));
        } else {
            rel.insert(Tuple::new([a, b], []));
        }
    }
    (rel, delta_anns)
}

/// The pre-segment-store publish cost: deep-clone every live tuple and
/// every posting bitset, exactly what `Arc::make_mut` paid per effective
/// drain when the published snapshot held the second reference.
fn old_deep_clone(rel: &AnnotatedRelation) -> usize {
    let tuples: Vec<Tuple> = rel.iter().map(|(_, t)| t.clone()).collect();
    let mut posting_bits = 0usize;
    for ann in rel.index().annotations() {
        if let Some(bits) = rel.index().postings(ann) {
            posting_bits += bits.clone().len();
        }
    }
    tuples.len() + posting_bits
}

/// Relation sizes under test; `ANNO_BENCH_QUICK=1` (the CI bench smoke
/// gate) drops the expensive million-tuple point.
fn sizes() -> Vec<usize> {
    if std::env::var_os("ANNO_BENCH_QUICK").is_some() {
        vec![10_000]
    } else {
        vec![10_000, 100_000, 1_000_000]
    }
}

fn publish_paths(c: &mut Criterion) {
    for size in sizes() {
        let (mut live, delta_anns) = build_relation(size);
        let mut group = c.benchmark_group(format!("publish/{size}"));
        group.sample_size(30);

        group.bench_function("old_deep_clone", |b| b.iter(|| old_deep_clone(&live)));

        // The new snapshot capture: O(#segments + #annotations) pointer
        // copies, independent of the delta applied since the last one.
        group.bench_function("publish_clone", |b| b.iter(|| live.clone()));

        // Steady-state writer loop: with a published snapshot outstanding,
        // apply an effective delta of Δ annotations, then publish. The
        // copy-on-write cost is bounded by the segments/postings the delta
        // touches — this is the number that must track Δ, not |D|.
        for &delta in &[16usize, 256] {
            // Unique (tuple, annotation) pairs so every update is
            // effective: walk tuples with a large stride, switch
            // annotations on wrap-around.
            let mut counter = 0usize;
            let mut published = live.clone();
            group.bench_function(BenchmarkId::new("publish_after_delta", delta), |b| {
                b.iter(|| {
                    for _ in 0..delta {
                        let tid = TupleId(((counter * 7919) % size) as u32);
                        let ann = delta_anns[(counter / size) % DELTA_ANNS as usize];
                        live.add_annotation(tid, ann);
                        counter += 1;
                    }
                    published = live.clone();
                    published.len()
                })
            });
            drop(published);
        }

        // Clustered delta: consecutive tuple ids, the shape of a real
        // annotation batch over one ingest region. Touches ⌈Δ/1024⌉
        // segments, so the copy-on-write cost is near-constant in |D|.
        let mut cursor = 0usize;
        let mut published = live.clone();
        group.bench_function(
            BenchmarkId::new("publish_after_delta_clustered", 256),
            |b| {
                b.iter(|| {
                    for _ in 0..256 {
                        let tid = TupleId((cursor % size) as u32);
                        let ann = delta_anns[32 + (cursor / size) % 32];
                        live.add_annotation(tid, ann);
                        cursor += 1;
                    }
                    published = live.clone();
                    published.len()
                })
            },
        );
        group.finish();
    }
}

criterion_group!(benches, publish_paths);
criterion_main!(benches);
