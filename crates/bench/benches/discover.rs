//! Discovery maintenance benchmarks (ISSUE 8 acceptance, recorded in
//! `BENCH_discover.json` at the workspace root).
//!
//! Three questions:
//!
//! * **Incremental refresh vs rescan-per-drain** — the tentpole claim.
//!   A drain script (annotation attach/detach toggles over a rich pair
//!   space) is driven through the miner ONCE, recording after each
//!   drain the itemset table state and the drained `DiscoveryTouch`
//!   log. The two maintenance strategies then replay identical
//!   recordings: per-drain [`DiscoveryIndex::refresh`] (work ∝ the
//!   drain's item footprint) vs [`DiscoveryIndex::rebuilt_from`] (work
//!   ∝ the whole table). The miner's own batch maintenance is identical
//!   in both worlds and deliberately excluded from the timed region.
//!   Acceptance: ≥10× at the 100k-tuple / 256-drain scale.
//! * **Snapshot materialization** — what publishing the bounded top-k
//!   (cap 64, names resolved) costs per drain, the fixed overhead both
//!   maintenance strategies share in the service.
//! * **Query cost** — `discover top=10` against a published snapshot:
//!   O(k) over the pre-ranked lists, the read path dashboards poll.
//!
//! The workload's pair structure is deliberate: every tuple co-fires
//! one `A_x` with one `B_y` annotation, giving |A|·|B| tracked pairs,
//! while each drain touches one name — the regime where rescans do
//! quadratic-in-vocabulary work for a constant-size change.
//!
//! Set `ANNO_BENCH_QUICK=1` (the CI bench smoke gate does) to shrink
//! sizes so every group still runs end to end in seconds.

use anno_discover::DiscoveryIndex;
use anno_mine::{
    DiscoveryTouch, FrequentItemsets, IncrementalConfig, IncrementalMiner, Thresholds,
};
use anno_store::{AnnotatedRelation, AnnotationUpdate, Item, Tuple, TupleId};
use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};

fn quick() -> bool {
    std::env::var_os("ANNO_BENCH_QUICK").is_some()
}

struct Workload {
    relation: AnnotatedRelation,
    /// The index as of the initial mine — the state both strategies
    /// start from.
    index: DiscoveryIndex,
    /// Per-drain recording: the miner's table after the drain and the
    /// touch log it drained.
    steps: Vec<(FrequentItemsets, DiscoveryTouch)>,
}

/// Build the benchmark state: `n` tuples whose annotations pair one of
/// `pool` `A_*` names with one of `pool` `B_*` names (so `pool²` pairs
/// stay frequent), an initial index, and `drain_count` recorded
/// toggle drains of 8 updates each (each full cycle through the `A_*`
/// names detaches a slice, the next cycle re-attaches it).
fn build(n: usize, drain_count: usize, pool: usize) -> Workload {
    let mut relation = AnnotatedRelation::new("bench");
    let anns_a: Vec<Item> = (0..pool)
        .map(|i| relation.vocab_mut().annotation(&format!("A_{i}")))
        .collect();
    let anns_b: Vec<Item> = (0..pool)
        .map(|i| relation.vocab_mut().annotation(&format!("B_{i}")))
        .collect();
    let data: Vec<Item> = (0..997)
        .map(|i| relation.vocab_mut().data(&format!("{i}")))
        .collect();
    let tuples: Vec<Tuple> = (0..n)
        .map(|i| {
            Tuple::new(
                [data[i % 997], data[(i * 7 + 1) % 997]],
                [anns_a[i % pool], anns_b[(i / pool) % pool]],
            )
        })
        .collect();
    relation.extend(tuples);

    // Support floor low enough that every A×B pair (n/pool² occurrences)
    // stays frequent with 2× headroom through the removal drains.
    let alpha = (n as f64 / (pool * pool) as f64) / 2.0 / n as f64;
    let mut miner = IncrementalMiner::mine_initial(
        &relation,
        IncrementalConfig {
            thresholds: Thresholds::new(alpha, 0.5),
            ..Default::default()
        },
    );
    let _ = miner.take_touches();
    let index = DiscoveryIndex::rebuilt_from(miner.table());
    assert!(
        index.pairs_tracked() >= pool * pool / 2,
        "the workload must track a rich pair space, got {}",
        index.pairs_tracked()
    );

    let stride = n / pool;
    let steps = (0..drain_count)
        .map(|d| {
            let x = d % pool;
            let occ = d / pool;
            let base = (occ / 2) * 8;
            let updates: Vec<AnnotationUpdate> = (0..8)
                .map(|k| AnnotationUpdate {
                    tuple: TupleId((x + pool * ((base + k) % stride)) as u32),
                    annotation: anns_a[x],
                })
                .collect();
            if occ % 2 == 0 {
                miner.remove_annotations(&mut relation, &updates);
            } else {
                miner.apply_annotations(&mut relation, updates.iter().copied());
            }
            (miner.table().clone(), miner.take_touches())
        })
        .collect();

    Workload {
        relation,
        index,
        steps,
    }
}

fn maintenance(c: &mut Criterion) {
    let (n, drain_count, pool) = if quick() {
        (5_000, 32, 16)
    } else {
        (100_000, 256, 64)
    };
    let w = build(n, drain_count, pool);

    // Correctness pin before timing anything: replaying the recorded
    // touches must land exactly where a rescan of the final table does.
    {
        let mut index = w.index.clone();
        for (table, touch) in &w.steps {
            index.refresh(table, touch);
        }
        let (final_table, _) = w.steps.last().expect("non-empty script");
        assert!(
            index.verify_against_rescan(final_table),
            "incremental maintenance diverged from the rescan reference"
        );
    }

    let mut group = c.benchmark_group(format!("discover_maintain/{n}x{drain_count}"));
    group.sample_size(10);
    group.bench_function("incremental", |b| {
        b.iter_batched(
            || w.index.clone(),
            |mut index| {
                for (table, touch) in &w.steps {
                    index.refresh(table, touch);
                }
                black_box(index.pairs_tracked())
            },
            BatchSize::LargeInput,
        )
    });
    group.bench_function("rescan_per_drain", |b| {
        b.iter(|| {
            let mut index = DiscoveryIndex::new();
            for (table, _) in &w.steps {
                index = DiscoveryIndex::rebuilt_from(table);
            }
            black_box(index.pairs_tracked())
        })
    });
    group.finish();

    // The acceptance ratio, measured outside criterion's estimator so
    // the run prints it directly.
    let inc = {
        let mut index = w.index.clone();
        let start = std::time::Instant::now();
        for (table, touch) in &w.steps {
            index.refresh(table, touch);
        }
        black_box(index.pairs_tracked());
        start.elapsed()
    };
    let scan = {
        let start = std::time::Instant::now();
        let mut index = DiscoveryIndex::new();
        for (table, _) in &w.steps {
            index = DiscoveryIndex::rebuilt_from(table);
        }
        black_box(index.pairs_tracked());
        start.elapsed()
    };
    println!(
        "discover_maintain/speedup: {:.1}x (incremental {inc:.2?} vs rescan {scan:.2?} \
         over {drain_count} drains, {} pairs tracked)",
        scan.as_secs_f64() / inc.as_secs_f64().max(1e-9),
        w.index.pairs_tracked(),
    );
}

fn snapshot_and_query(c: &mut Criterion) {
    let (n, pool) = if quick() { (5_000, 16) } else { (100_000, 64) };
    let w = build(n, 0, pool);

    let mut group = c.benchmark_group(format!("discover_read/{n}"));
    group.bench_function("snapshot_cap64", |b| {
        b.iter(|| {
            black_box(
                w.index
                    .snapshot(1, w.relation.len() as u64, 64, w.relation.vocab()),
            )
            .within
            .len()
        })
    });
    let snap = w
        .index
        .snapshot(1, w.relation.len() as u64, 64, w.relation.vocab());
    group.bench_function("query_top10", |b| {
        b.iter(|| black_box(snap.query(10, 0.0, false)).len())
    });
    group.finish();
}

criterion_group!(benches, maintenance, snapshot_and_query);
criterion_main!(benches);
