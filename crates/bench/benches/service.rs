//! Serving-layer benchmarks: snapshot read path vs. batched write path.
//!
//! Measures what the `anno-service` architecture is for: cheap reads off a
//! published snapshot (rule filtering, top-k recommendations) and the
//! throughput of the coalescing write path folding annotation streams into
//! single incremental-maintenance passes.

use anno_bench::{paper_thresholds, paper_workload};
use anno_service::queue::UpdateOp;
use anno_service::{Service, ServiceConfig};
use anno_store::{dataset_to_string, random_annotation_batch, AnnotationUpdate};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn service_paths(c: &mut Criterion) {
    let ds = paper_workload();
    let text = dataset_to_string(&ds.relation);
    let service = Service::new();
    let dataset = service
        .create(
            "bench",
            ServiceConfig {
                thresholds: paper_thresholds(),
                ..Default::default()
            },
        )
        .expect("fresh dataset");
    dataset
        .enqueue(UpdateOp::InsertRows(
            text.lines().map(str::to_string).collect(),
        ))
        .expect("load workload");
    dataset.flush().expect("loaded");
    let snap = dataset.mine().expect("mined");

    // A tuple with annotations missing, for the recommendation path.
    let probe = snap
        .relation()
        .iter()
        .map(|(tid, _)| tid)
        .next()
        .expect("non-empty workload");

    let mut group = c.benchmark_group("service");
    group.sample_size(20);
    group.bench_function("snapshot_clone", |b| {
        b.iter(|| dataset.snapshot().expect("published"))
    });
    group.bench_function("rules_unfiltered", |b| {
        b.iter(|| snap.rules_with_antecedent(&[]).len())
    });
    group.bench_function("recommend_tuple_top10", |b| {
        b.iter(|| snap.recommend_for_tuple(probe, 10))
    });

    let mut rng = StdRng::seed_from_u64(0x5EEE);
    group.bench_function("write_annotation_batch_100", |b| {
        b.iter_batched(
            || -> Vec<AnnotationUpdate> {
                // Bind the snapshot so the relation is borrowed, not
                // deep-cloned, per sample.
                let snap = dataset.snapshot().expect("published");
                random_annotation_batch(snap.relation(), &mut rng, 100)
            },
            |batch| {
                dataset.enqueue(UpdateOp::Annotate(batch)).expect("enqueue");
                dataset.flush().expect("applied");
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, service_paths);
criterion_main!(benches);
