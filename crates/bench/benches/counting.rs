//! E8 (ablation) — Fig. 3 prescribes a hash tree for candidate counting;
//! this bench compares it against first-item-bucketed direct scanning
//! inside the same Apriori skeleton.

use anno_bench::paper_workload;
use anno_mine::{apriori, transactions_of, AprioriConfig, CountingStrategy, MiningMode};
use criterion::{criterion_group, criterion_main, Criterion};

fn counting(c: &mut Criterion) {
    let ds = paper_workload();
    let transactions = transactions_of(&ds.relation, MiningMode::Annotated);
    let alpha = 0.25;
    let mut group = c.benchmark_group("counting");
    group.sample_size(10);
    for (name, strategy) in [
        ("hash_tree", CountingStrategy::HashTree),
        ("direct_scan", CountingStrategy::DirectScan),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                apriori(
                    &transactions,
                    alpha,
                    &AprioriConfig {
                        mode: MiningMode::Annotated,
                        counting: strategy,
                        max_len: None,
                    },
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, counting);
criterion_main!(benches);
