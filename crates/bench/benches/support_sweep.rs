//! E2 — §4.3's scaling claim: "As the support value decreases the run time
//! of the apriori algorithm takes magnitudes longer as many more potential
//! rules need to be individually considered."
//!
//! Measures full Apriori over the paper-scale database across a minimum-
//! support sweep; the expected shape is super-linear growth as α falls.

use anno_bench::paper_workload;
use anno_mine::{apriori, transactions_of, AprioriConfig, MiningMode};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn support_sweep(c: &mut Criterion) {
    let ds = paper_workload();
    let transactions = transactions_of(&ds.relation, MiningMode::Annotated);
    let mut group = c.benchmark_group("support_sweep");
    group.sample_size(10);
    for &alpha in &[0.5, 0.4, 0.3, 0.25, 0.2] {
        group.bench_with_input(BenchmarkId::from_parameter(alpha), &alpha, |b, &alpha| {
            b.iter(|| apriori(&transactions, alpha, &AprioriConfig::default()))
        });
    }
    group.finish();
}

criterion_group!(benches, support_sweep);
criterion_main!(benches);
