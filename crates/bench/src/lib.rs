//! Shared workloads and measurement helpers for the benchmark harness.
//!
//! Every bench target and the `experiments` binary build their inputs here
//! so that criterion benches and printed experiment tables measure the
//! same thing. All workloads are seeded and deterministic.

#![forbid(unsafe_code)]

use anno_mine::{IncrementalConfig, IncrementalMiner, Thresholds};
use anno_store::{
    generate, random_annotation_batch, AnnotatedRelation, AnnotationUpdate, GeneratorConfig,
    SyntheticDataset,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The paper's evaluation configuration: ≈8000 tuples, α = 0.4, β = 0.8.
pub fn paper_workload() -> SyntheticDataset {
    generate(&GeneratorConfig::paper_scale(0xED87))
}

/// The paper's thresholds (§4.3 Results).
pub fn paper_thresholds() -> Thresholds {
    Thresholds::paper()
}

/// A scaled copy of the paper workload with `tuples` tuples.
pub fn sized_workload(tuples: usize) -> SyntheticDataset {
    let mut cfg = GeneratorConfig::paper_scale(0xED87);
    cfg.tuples = tuples;
    generate(&cfg)
}

/// A relation plus a prepared miner and a sequence of Case-3 batches, the
/// Fig. 16 measurement setup.
pub struct Fig16Setup {
    /// The evolving relation.
    pub relation: AnnotatedRelation,
    /// Miner primed on the initial relation.
    pub miner: IncrementalMiner,
    /// Pre-generated annotation batches to apply.
    pub batches: Vec<Vec<AnnotationUpdate>>,
}

/// Build the Fig. 16 setup: a paper-scale database, a primed miner, and
/// `batch_count` annotation batches of `batch_size` updates each.
pub fn fig16_setup(batch_count: usize, batch_size: usize) -> Fig16Setup {
    let ds = paper_workload();
    let relation = ds.relation;
    let miner = IncrementalMiner::mine_initial(
        &relation,
        IncrementalConfig {
            thresholds: paper_thresholds(),
            ..Default::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(0xBA7C);
    let mut batches = Vec::with_capacity(batch_count);
    let mut scratch = relation.clone();
    for _ in 0..batch_count {
        let batch = random_annotation_batch(&scratch, &mut rng, batch_size);
        // Keep successive batches disjoint by applying them to a scratch
        // copy, mirroring a live database receiving updates over time.
        scratch.apply_annotation_batch(batch.iter().copied());
        batches.push(batch);
    }
    Fig16Setup {
        relation,
        miner,
        batches,
    }
}

/// Milliseconds spent in `f`.
pub fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t = std::time::Instant::now();
    let out = f();
    (out, t.elapsed().as_secs_f64() * 1e3)
}
