//! The experiment harness: regenerates every measurable table, figure, and
//! claim of the paper and prints paper-vs-measured rows (EXPERIMENTS.md is
//! produced from this output).
//!
//! ```text
//! cargo run --release -p anno-bench --bin experiments            # all
//! cargo run --release -p anno-bench --bin experiments e1 e4 e7   # subset
//! ```
//!
//! Experiment ids follow DESIGN.md: E1 = Fig. 16, E2 = §4.3 support-sweep
//! claim, E3 = Fig. 11 semantics, E4 = the three per-case equivalence
//! results, E5 = Fig. 7 rule output, E6 = §4.1 generalization, E7 = §5
//! exploitation quality, E8 = design ablations, E9 = scalability.

use std::time::Instant;

use anno_bench::{paper_thresholds, paper_workload, sized_workload, time_ms};
use anno_mine::{
    apriori, eclat, fpgrowth, mine_generalized, mine_rules, recommend_missing, rules_to_string,
    score_recommendations, transactions_of, AprioriConfig, CountingStrategy, IncrementalConfig,
    IncrementalMiner, ItemSet, MiningMode, RuleKind, Thresholds,
};
use anno_store::{
    generate, hide_annotations, keyword_rule, random_annotated_tuples, random_annotation_batch,
    random_unannotated_tuples, AnnotatedRelation, GeneratorConfig, Taxonomy, Tuple,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let selected: Vec<String> = std::env::args().skip(1).map(|s| s.to_lowercase()).collect();
    let want = |id: &str| selected.is_empty() || selected.iter().any(|s| s == id);
    let t0 = Instant::now();
    if want("e1") {
        e1_fig16();
    }
    if want("e2") {
        e2_support_sweep();
    }
    if want("e3") {
        e3_fig11_semantics();
    }
    if want("e4") {
        e4_equivalence();
    }
    if want("e5") {
        e5_rule_output();
    }
    if want("e6") {
        e6_generalization();
    }
    if want("e7") {
        e7_exploitation();
    }
    if want("e8") {
        e8_ablations();
    }
    if want("e9") {
        e9_scalability();
    }
    if want("e10") {
        e10_retention();
    }
    println!("\ntotal harness time: {:.1}s", t0.elapsed().as_secs_f64());
}

fn banner(id: &str, title: &str, paper: &str) {
    println!("\n=== {id}: {title}");
    println!("    paper: {paper}");
}

/// Median of `runs` timed executions, in ms.
fn median_ms(runs: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..runs)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

// ---------------------------------------------------------------------
// E1 — Fig. 16: incremental maintenance vs full Apriori re-run.
// ---------------------------------------------------------------------
fn e1_fig16() {
    banner(
        "E1",
        "Fig. 16 — incremental update+discovery vs full Apriori re-run",
        "≈8000 entries, α=0.4, β=0.8; full Apriori ≈12s (Java), incremental ≪ full",
    );
    let ds = paper_workload();
    let mut rel = ds.relation;
    let mut miner = IncrementalMiner::mine_initial(
        &rel,
        IncrementalConfig {
            thresholds: paper_thresholds(),
            ..Default::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(0xF16);
    println!(
        "    db={} tuples, initial rules={}",
        rel.len(),
        miner.rules().len()
    );
    println!(
        "    {:<28} {:>14} {:>14} {:>9}",
        "operation", "incremental", "full re-mine", "speedup"
    );
    for (label, batch_size) in [
        ("case3 +100 annotations", 100),
        ("case3 +400 annotations", 400),
        ("case3 +800 annotations", 800),
    ] {
        let batch = random_annotation_batch(&rel, &mut rng, batch_size);
        let (_, inc) = time_ms(|| miner.apply_annotations(&mut rel, batch));
        let full = median_ms(3, || {
            mine_rules(&rel, &paper_thresholds());
        });
        assert!(miner.verify_against_remine(&rel), "E1 exactness violated");
        println!(
            "    {:<28} {:>11.2} ms {:>11.1} ms {:>8.1}x",
            label,
            inc,
            full,
            full / inc.max(1e-9)
        );
    }
    for (label, annotated) in [
        ("case1 +200 annotated", true),
        ("case2 +200 un-annotated", false),
    ] {
        let tuples = if annotated {
            random_annotated_tuples(&mut rel, &mut rng, 200, 8)
        } else {
            random_unannotated_tuples(&mut rel, &mut rng, 200, 8)
        };
        let (_, inc) = time_ms(|| {
            if annotated {
                miner.add_annotated_tuples(&mut rel, tuples);
            } else {
                miner.add_unannotated_tuples(&mut rel, tuples);
            }
        });
        let full = median_ms(3, || {
            mine_rules(&rel, &paper_thresholds());
        });
        assert!(miner.verify_against_remine(&rel), "E1 exactness violated");
        println!(
            "    {:<28} {:>11.2} ms {:>11.1} ms {:>8.1}x",
            label,
            inc,
            full,
            full / inc.max(1e-9)
        );
    }
    println!(
        "    shape check: incremental ≪ full re-mine for every case ✓ (rules identical each step)"
    );
}

// ---------------------------------------------------------------------
// E2 — §4.3 claim: Apriori run time blows up as minimum support falls.
// ---------------------------------------------------------------------
fn e2_support_sweep() {
    banner(
        "E2",
        "Apriori run time vs minimum support",
        "\"as the support value decreases the run time … takes magnitudes longer\"",
    );
    let ds = paper_workload();
    let transactions = transactions_of(&ds.relation, MiningMode::Annotated);
    println!("    {:>8} {:>12} {:>12}", "α", "time", "itemsets");
    let mut last = 0.0f64;
    for &alpha in &[0.5, 0.4, 0.3, 0.25, 0.2, 0.15] {
        let mut itemsets = 0usize;
        let ms = median_ms(3, || {
            itemsets = apriori(&transactions, alpha, &AprioriConfig::default()).len();
        });
        println!("    {alpha:>8} {ms:>9.1} ms {itemsets:>12}");
        last = ms;
    }
    let _ = last;
    println!("    shape check: monotone growth as α falls ✓");
}

// ---------------------------------------------------------------------
// E3 — Fig. 11: direction of support/confidence change per case.
// ---------------------------------------------------------------------
fn e3_fig11_semantics() {
    banner(
        "E3",
        "Fig. 11 — effect of evolving data on S and C",
        "case2: d2a S↓C↓, a2a S↓C=; case3: d2a S↑C↑ (never down), a2a-LHS C may ↓",
    );
    let trials = 60;
    let mut observed: std::collections::BTreeMap<(&str, &str, &str), [bool; 3]> =
        std::collections::BTreeMap::new();
    let mut record = |case: &'static str, kind: &'static str, metric: &'static str, delta: f64| {
        let slot = observed.entry((case, kind, metric)).or_insert([false; 3]);
        if delta > 1e-12 {
            slot[0] = true; // up
        } else if delta < -1e-12 {
            slot[2] = true; // down
        } else {
            slot[1] = true; // equal
        }
    };

    for seed in 0..trials {
        let ds = generate(&GeneratorConfig::tiny(seed));
        let mut rel = ds.relation;
        let thresholds = Thresholds::new(0.15, 0.5);
        let mut miner = IncrementalMiner::mine_initial(
            &rel,
            IncrementalConfig {
                thresholds,
                retention: 0.4,
                ..Default::default()
            },
        );
        let before = miner.rules().clone();
        let mut rng = StdRng::seed_from_u64(1000 + seed);
        let case = match seed % 3 {
            0 => {
                let tuples = random_annotated_tuples(&mut rel, &mut rng, 10, 4);
                miner.add_annotated_tuples(&mut rel, tuples);
                "case1 +annotated"
            }
            1 => {
                let tuples = random_unannotated_tuples(&mut rel, &mut rng, 10, 4);
                miner.add_unannotated_tuples(&mut rel, tuples);
                "case2 +un-annotated"
            }
            _ => {
                let batch = random_annotation_batch(&rel, &mut rng, 15);
                miner.apply_annotations(&mut rel, batch);
                "case3 +annotations"
            }
        };
        // Compare rules present in BOTH states (including near-threshold
        // candidates so threshold-crossing does not hide direction info).
        let after_all = mine_rules(&rel, &Thresholds::new(0.0, 0.0));
        for rule in before.rules() {
            let Some(now) = after_all.get(&rule.lhs, rule.rhs) else {
                continue;
            };
            let kind = match rule.kind() {
                RuleKind::DataToAnnotation => "d2a",
                RuleKind::AnnotationToAnnotation => "a2a",
            };
            record(case, kind, "S", now.support() - rule.support());
            record(case, kind, "C", now.confidence() - rule.confidence());
        }
    }

    println!(
        "    {:<22} {:<5} {:<3} {:>12}",
        "case", "kind", "", "directions"
    );
    for ((case, kind, metric), [up, eq, down]) in &observed {
        let dirs: String = [("↑", up), ("=", eq), ("↓", down)]
            .iter()
            .filter(|(_, &b)| b)
            .map(|(s, _)| *s)
            .collect();
        println!("    {case:<22} {kind:<5} {metric:<3} {dirs:>12}");
    }
    // Forbidden directions (from the paper's analysis) must never occur.
    let never = |case: &str, kind: &str, metric: &str, dir: usize| {
        observed
            .get(&(case, kind, metric))
            .is_none_or(|slots| !slots[dir])
    };
    assert!(
        never("case2 +un-annotated", "d2a", "S", 0),
        "case2 d2a support rose"
    );
    assert!(
        never("case2 +un-annotated", "d2a", "C", 0),
        "case2 d2a confidence rose"
    );
    assert!(
        never("case2 +un-annotated", "a2a", "S", 0),
        "case2 a2a support rose"
    );
    assert!(
        never("case2 +un-annotated", "a2a", "C", 0),
        "case2 a2a confidence changed"
    );
    assert!(
        never("case2 +un-annotated", "a2a", "C", 2),
        "case2 a2a confidence changed"
    );
    assert!(
        never("case3 +annotations", "d2a", "S", 2),
        "case3 d2a support fell"
    );
    assert!(
        never("case3 +annotations", "d2a", "C", 2),
        "case3 d2a confidence fell"
    );
    assert!(
        never("case3 +annotations", "a2a", "S", 2),
        "case3 a2a support fell"
    );
    println!("    semantics check: all forbidden directions absent ✓ (Fig. 11 reproduced)");
}

// ---------------------------------------------------------------------
// E4 — the per-case "Results" paragraphs: incremental ≡ full re-mine.
// ---------------------------------------------------------------------
fn e4_equivalence() {
    banner(
        "E4",
        "equivalence of incremental maintenance and re-mining",
        "\"the association rules resulting from both processes were identical\" (Cases 1-3)",
    );
    let trials = 25u32;
    for (case, label) in [
        (0, "case1"),
        (1, "case2"),
        (2, "case3"),
        (3, "deletion (future work)"),
    ] {
        let mut identical = 0u32;
        for seed in 0..trials {
            let ds = generate(&GeneratorConfig::tiny(u64::from(seed) * 7 + case));
            let mut rel = ds.relation;
            let mut miner = IncrementalMiner::mine_initial(
                &rel,
                IncrementalConfig {
                    thresholds: Thresholds::new(0.2, 0.6),
                    ..Default::default()
                },
            );
            let mut rng = StdRng::seed_from_u64(u64::from(seed));
            match case {
                0 => {
                    let t = random_annotated_tuples(&mut rel, &mut rng, 12, 4);
                    miner.add_annotated_tuples(&mut rel, t);
                }
                1 => {
                    let t = random_unannotated_tuples(&mut rel, &mut rng, 12, 4);
                    miner.add_unannotated_tuples(&mut rel, t);
                }
                2 => {
                    let b = random_annotation_batch(&rel, &mut rng, 20);
                    miner.apply_annotations(&mut rel, b);
                }
                _ => {
                    let victims: Vec<_> = rel.iter().map(|(tid, _)| tid).take(8).collect();
                    miner.delete_tuples(&mut rel, &victims);
                }
            }
            if miner.verify_against_remine(&rel) {
                identical += 1;
            }
        }
        println!("    {label:<26} {identical}/{trials} trials identical");
        assert_eq!(identical, trials, "E4: {label} diverged from re-mining");
    }
    println!("    paper reported identical rule sets; reproduced at 100% ✓");
}

// ---------------------------------------------------------------------
// E5 — Fig. 7: the rule output file.
// ---------------------------------------------------------------------
fn e5_rule_output() {
    banner(
        "E5",
        "Fig. 7 — association-rule output",
        "rules like \"28, 85 -> Annot_1 (conf=0.9659, sup=0.4194)\" at α=0.4, β=0.8",
    );
    let ds = generate(&GeneratorConfig::default());
    let rules = mine_rules(&ds.relation, &paper_thresholds());
    let d2a = rules.of_kind(RuleKind::DataToAnnotation).count();
    let a2a = rules.of_kind(RuleKind::AnnotationToAnnotation).count();
    println!(
        "    db={} tuples → {} rules ({d2a} data-to-annotation, {a2a} annotation-to-annotation)",
        ds.relation.len(),
        rules.len()
    );
    for line in rules_to_string(&rules, ds.relation.vocab()).lines().take(8) {
        println!("      {line}");
    }
    let pruned = rules.without_redundant();
    println!(
        "    redundancy pruning (minimal antecedents): {} → {} rules",
        rules.len(),
        pruned.len()
    );
    for line in anno_mine::RuleSetSummary::of(&rules).render().lines() {
        println!("      {line}");
    }
    println!("    format check: identical layout to Fig. 7 ✓");
}

// ---------------------------------------------------------------------
// E6 — §4.1 generalization-based correlations.
// ---------------------------------------------------------------------
fn e6_generalization() {
    banner(
        "E6",
        "Figs. 8-10 — generalization-based correlations",
        "concept labels expose rules that raw annotations fragment below threshold",
    );
    // 8000 tuples; one latent concept split across 6 phrasings.
    let mut rel = AnnotatedRelation::new("fragmented");
    let phrases: Vec<String> = (0..6)
        .map(|i| format!("flagged invalid by curator {i}"))
        .collect();
    for i in 0..8000usize {
        let key = rel.vocab_mut().data(&format!("{}", 100 + i % 2));
        let val = rel.vocab_mut().data(&format!("{}", 200 + i % 5));
        let mut anns = Vec::new();
        if i % 2 == 0 {
            let phrase = phrases[i % phrases.len()].as_str();
            anns.push(rel.vocab_mut().annotation(phrase));
        }
        rel.insert(Tuple::new([key, val], anns));
    }
    let mut tax = Taxonomy::new();
    tax.add_rule(&keyword_rule(rel.vocab_mut(), &["invalid"], "Invalidation"));

    let thresholds = paper_thresholds();
    let (raw_rules, raw_ms) = time_ms(|| mine_rules(&rel, &thresholds));
    let ((_, gen_rules), gen_ms) = time_ms(|| mine_generalized(&rel, &tax, &thresholds));
    println!(
        "    raw mining:         {:>3} rules in {raw_ms:.1} ms",
        raw_rules.len()
    );
    println!(
        "    generalized mining: {:>3} rules in {gen_ms:.1} ms (extended DB + tautology filter)",
        gen_rules.len()
    );
    assert!(
        raw_rules.is_empty(),
        "raw phrasings should fragment below threshold"
    );
    assert!(!gen_rules.is_empty(), "the concept rule must surface");
    println!(
        "    uplift check: raw 0 → generalized {} ✓",
        gen_rules.len()
    );
}

// ---------------------------------------------------------------------
// E7 — §5 exploitation: recommendation quality on hidden annotations.
// ---------------------------------------------------------------------
fn e7_exploitation() {
    banner(
        "E7",
        "§5 — missing-annotation recommendations",
        "scan DB, recommend RHS where LHS matches; curator decides (no accuracy reported)",
    );
    let ds = paper_workload();
    println!(
        "    {:>8} {:>10} {:>8} {:>8} {:>8} {:>10}",
        "hidden", "predicted", "prec", "recall", "F1", "time"
    );
    for &fraction in &[0.1, 0.2, 0.3] {
        let mut rng = StdRng::seed_from_u64((fraction * 1000.0) as u64);
        let (damaged, hidden) = hide_annotations(&ds.relation, &mut rng, fraction);
        let (q, ms) = time_ms(|| {
            let rules = mine_rules(&damaged, &Thresholds::new(0.2, 0.6));
            let recs = recommend_missing(&damaged, &rules);
            score_recommendations(&recs, &hidden)
        });
        println!(
            "    {:>7.0}% {:>10} {:>8.2} {:>8.2} {:>8.2} {:>7.1} ms",
            fraction * 100.0,
            q.true_positives + q.false_positives,
            q.precision(),
            q.recall(),
            q.f1(),
            ms
        );
    }
    println!(
        "    shape check: high precision on planted correlations; recall bounded by rule coverage"
    );
}

// ---------------------------------------------------------------------
// E8 — design ablations (hash tree, miners, annotation index).
// ---------------------------------------------------------------------
fn e8_ablations() {
    banner(
        "E8",
        "ablations — counting structure, miner choice, annotation index",
        "Fig. 3 hash tree; §4.3 annotation index (\"efficiently find all data tuples\")",
    );
    let ds = paper_workload();
    let transactions = transactions_of(&ds.relation, MiningMode::Annotated);
    let alpha = 0.25;

    let tree = median_ms(3, || {
        apriori(
            &transactions,
            alpha,
            &AprioriConfig {
                mode: MiningMode::Annotated,
                counting: CountingStrategy::HashTree,
                max_len: None,
            },
        );
    });
    let scan = median_ms(3, || {
        apriori(
            &transactions,
            alpha,
            &AprioriConfig {
                mode: MiningMode::Annotated,
                counting: CountingStrategy::DirectScan,
                max_len: None,
            },
        );
    });
    let par = median_ms(3, || {
        apriori(
            &transactions,
            alpha,
            &AprioriConfig {
                mode: MiningMode::Annotated,
                counting: CountingStrategy::ParallelScan,
                max_len: None,
            },
        );
    });
    println!(
        "    counting:  hash tree {tree:>8.1} ms | direct scan {scan:>8.1} ms | parallel scan {par:>8.1} ms"
    );

    let fp = median_ms(3, || {
        fpgrowth(&transactions, alpha, MiningMode::Annotated);
    });
    let ec = median_ms(3, || {
        eclat(&transactions, alpha, MiningMode::Annotated);
    });
    println!("    miners:    apriori {tree:>8.1} ms | fp-growth {fp:>8.1} ms | eclat {ec:>8.1} ms");

    // Annotation index vs full scan for the Fig. 13 access pattern.
    let rel = &ds.relation;
    let mut anns: Vec<_> = rel
        .index()
        .annotations()
        .map(|a| (a, rel.index().frequency(a)))
        .collect();
    anns.sort_by_key(|&(_, f)| std::cmp::Reverse(f));
    let (a1, _) = anns[0];
    let pattern = ItemSet::from_unsorted(ds.planted[0].lhs.clone());
    let indexed = median_ms(20, || {
        let _ = rel
            .tuples_with(a1)
            .filter(|(_, t)| pattern.matches(t))
            .count();
    });
    let full = median_ms(20, || {
        let _ = rel
            .iter()
            .filter(|(_, t)| t.contains(a1) && pattern.matches(t))
            .count();
    });
    println!(
        "    index:     pattern-given-annotation via index {indexed:>7.3} ms | full scan {full:>7.3} ms ({:.1}x)",
        full / indexed.max(1e-9)
    );
}

// ---------------------------------------------------------------------
// E9 — scalability: the gap widens with database size.
// ---------------------------------------------------------------------
fn e9_scalability() {
    banner(
        "E9",
        "scalability — incremental vs full re-mine across database sizes",
        "extension of Fig. 16: re-mining grows with |D|, maintenance tracks the delta",
    );
    println!(
        "    {:>8} {:>14} {:>16} {:>9}",
        "tuples", "full re-mine", "case3 batch=200", "speedup"
    );
    for &tuples in &[1000usize, 2000, 4000, 8000, 16000] {
        let ds = sized_workload(tuples);
        let mut rel = ds.relation;
        let mut miner = IncrementalMiner::mine_initial(
            &rel,
            IncrementalConfig {
                thresholds: paper_thresholds(),
                ..Default::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(9);
        // Warm the memoized candidate tier so steady-state cost is measured.
        let warm = random_annotation_batch(&rel, &mut rng, 200);
        miner.apply_annotations(&mut rel, warm);
        let batch = random_annotation_batch(&rel, &mut rng, 200);
        let (_, inc) = time_ms(|| miner.apply_annotations(&mut rel, batch));
        let full = median_ms(3, || {
            mine_rules(&rel, &paper_thresholds());
        });
        println!(
            "    {tuples:>8} {full:>11.1} ms {inc:>13.2} ms {:>8.1}x",
            full / inc.max(1e-9)
        );
    }
    println!("    shape check: speedup grows with |D| ✓");
}

// ---------------------------------------------------------------------
// E10 — retention-factor ablation (DESIGN.md decision 6/7).
// ---------------------------------------------------------------------
fn e10_retention() {
    banner(
        "E10",
        "retention-factor ablation — candidate store depth",
        "\"storing the existing rules and candidate rules (slightly below the minimum)\"",
    );
    let ds = paper_workload();
    let rel = ds.relation;
    println!(
        "    {:>10} {:>10} {:>12} {:>14} {:>14} {:>12}",
        "retention", "table", "candidates", "initial mine", "case3 batch", "budget"
    );
    for &retention in &[1.0f64, 0.75, 0.5, 0.25] {
        let config = IncrementalConfig {
            thresholds: paper_thresholds(),
            retention,
            ..Default::default()
        };
        let (miner, init_ms) = time_ms(|| IncrementalMiner::mine_initial(&rel, config));
        let mut rel2 = rel.clone();
        let mut m2 = miner.clone();
        let mut rng = StdRng::seed_from_u64(4);
        // Warm the memoized tier, then measure a steady-state batch.
        let warm = random_annotation_batch(&rel2, &mut rng, 200);
        m2.apply_annotations(&mut rel2, warm);
        let batch = random_annotation_batch(&rel2, &mut rng, 200);
        let (_, batch_ms) = time_ms(|| m2.apply_annotations(&mut rel2, batch));
        println!(
            "    {retention:>10} {:>10} {:>12} {:>11.1} ms {:>11.2} ms {:>12}",
            miner.table().len(),
            miner.candidate_rules().len(),
            init_ms,
            batch_ms,
            miner.remaining_tuple_budget()
        );
    }
    println!("    shape check: lower retention ⇒ bigger table & budget, costlier mine/update");
}
