//! Developer utility: break down where Case-3 maintenance time goes,
//! comparing one `apply_annotations` call against a full re-mine.
//!
//! ```text
//! cargo run --release -p anno-bench --bin profile_case3 [batch_size]
//! ```

use anno_bench::{fig16_setup, paper_thresholds, time_ms};
use anno_mine::mine_rules;

fn main() {
    let batch_size: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400);
    let mut setup = fig16_setup(8, batch_size);
    println!(
        "db = {} tuples, table = {} itemsets, batch = {batch_size} updates",
        setup.relation.len(),
        setup.miner.table().len()
    );
    for (i, batch) in setup.batches.into_iter().enumerate() {
        let (_, inc_ms) = time_ms(|| setup.miner.apply_annotations(&mut setup.relation, batch));
        let (_, full_ms) = time_ms(|| mine_rules(&setup.relation, &paper_thresholds()));
        println!(
            "batch {i}: incremental {inc_ms:>8.2} ms | full re-mine {full_ms:>8.1} ms | table {} itemsets | {} discovered",
            setup.miner.table().len(),
            setup.miner.stats().discovered_itemsets
        );
    }
}
