//! Integration test: generalization across all three crates — taxonomy
//! application on relations, multi-level mining, tautology filtering, and
//! the semiring-homomorphism reading of generalization.

use annomine::mine::{mine_generalized, mine_rules, ItemSet, Thresholds};
use annomine::semiring::{rename, Lineage, Semiring};
use annomine::store::{taxonomy_from_rules, AnnotatedRelation, ItemKind, Tuple};

/// Curators flag tuples with three phrasings; a two-level taxonomy maps
/// them to `Broken` and then to `QualityIssue`.
fn setup() -> (AnnotatedRelation, annomine::store::Taxonomy) {
    let mut rel = AnnotatedRelation::new("R");
    let x = rel.vocab_mut().data("7");
    let y = rel.vocab_mut().data("8");
    let phr = ["bad_a", "bad_b", "bad_c"];
    for i in 0..12 {
        let ann = rel.vocab_mut().annotation(phr[i % 3]);
        rel.insert(Tuple::new([x, y], [ann]));
    }
    for _ in 0..4 {
        rel.insert(Tuple::new([y], []));
    }
    let tax = taxonomy_from_rules(
        "bad_a, bad_b, bad_c -> Broken\nBroken -> QualityIssue",
        rel.vocab_mut(),
    )
    .unwrap();
    (rel, tax)
}

#[test]
fn multi_level_labels_reach_every_ancestor() {
    let (rel, tax) = setup();
    let extended = tax.extend_relation(&rel);
    let broken = extended.vocab().get(ItemKind::Label, "Broken").unwrap();
    let quality = extended
        .vocab()
        .get(ItemKind::Label, "QualityIssue")
        .unwrap();
    assert_eq!(extended.index().frequency(broken), 12);
    assert_eq!(extended.index().frequency(quality), 12);
    extended.check_consistency().unwrap();
    // Original relation is untouched.
    assert_eq!(rel.index().frequency(broken), 0);
}

#[test]
fn generalized_rules_exist_at_every_level() {
    let (rel, tax) = setup();
    let thresholds = Thresholds::new(0.3, 0.9);
    assert!(
        mine_rules(&rel, &thresholds).is_empty(),
        "raw phrasings fragment"
    );
    let (extended, rules) = mine_generalized(&rel, &tax, &thresholds);
    let x = extended.vocab().get(ItemKind::Data, "7").unwrap();
    let broken = extended.vocab().get(ItemKind::Label, "Broken").unwrap();
    let quality = extended
        .vocab()
        .get(ItemKind::Label, "QualityIssue")
        .unwrap();
    assert!(
        rules.get(&ItemSet::single(x), broken).is_some(),
        "level-1 rule"
    );
    assert!(
        rules.get(&ItemSet::single(x), quality).is_some(),
        "level-2 rule"
    );
}

#[test]
fn hierarchical_tautologies_are_filtered() {
    let (rel, tax) = setup();
    let (extended, rules) = mine_generalized(&rel, &tax, &Thresholds::new(0.2, 0.9));
    let broken = extended.vocab().get(ItemKind::Label, "Broken").unwrap();
    let quality = extended
        .vocab()
        .get(ItemKind::Label, "QualityIssue")
        .unwrap();
    // {Broken} ⇒ QualityIssue holds with confidence 1.0 *by construction*
    // and must be filtered as uninformative.
    assert!(rules.get(&ItemSet::single(broken), quality).is_none());
    // No surviving rule has its RHS as an ancestor of an LHS item.
    for rule in rules.rules() {
        assert!(!rule
            .lhs
            .items()
            .iter()
            .any(|&l| tax.is_ancestor(rule.rhs, l)));
    }
}

#[test]
fn generalization_is_a_lineage_homomorphism() {
    let (rel, tax) = setup();
    let h = tax.lineage_hom();
    // For every tuple: renaming its lineage equals the lineage of its
    // first-level-extended annotations restricted to the renamed image.
    for (_, tuple) in rel.iter() {
        let renamed = rename(&tuple.lineage(), &h);
        // Every variable in the renamed lineage is a label (the taxonomy
        // maps every raw annotation here) and the homomorphism laws hold.
        let other = Lineage::from_vars([annomine::store::Item::data(0).as_var()]);
        assert_eq!(
            rename(&tuple.lineage().plus(&other), &h),
            renamed.plus(&rename(&other, &h))
        );
    }
}
