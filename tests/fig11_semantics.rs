//! Integration test: the Fig. 11 semantics table as assertions.
//!
//! The paper's Fig. 11 tabulates how each evolution case may move a rule's
//! support (S) and confidence (C). The text pins down the hard guarantees:
//!
//! * Case 2 (add un-annotated tuples): d2a rules — S and C "may only
//!   decrease"; a2a rules — "only the support may decrease while the
//!   confidence will remain the same".
//! * Case 3 (add annotations): d2a rules — "support and confidence … cannot
//!   decrease"; same for a2a rules whose new annotation lands on the RHS;
//!   a2a confidence may decrease only via the LHS.
//!
//! We replay randomized instances of each case and assert the forbidden
//! directions never occur for rules present before and after.

use annomine::mine::{mine_rules, IncrementalConfig, IncrementalMiner, RuleKind, Thresholds};
use annomine::store::{
    generate, random_annotated_tuples, random_annotation_batch, random_unannotated_tuples,
    GeneratorConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// For each maintained rule that still exists (at any strength) after the
/// mutation, yield (kind, ΔS, ΔC).
fn deltas(
    rel_before: &annomine::store::AnnotatedRelation,
    rel_after: &annomine::store::AnnotatedRelation,
) -> Vec<(RuleKind, f64, f64)> {
    let loose = Thresholds::new(0.0, 0.0);
    let before = mine_rules(rel_before, &Thresholds::new(0.15, 0.5));
    let after = mine_rules(rel_after, &loose);
    before
        .rules()
        .iter()
        .filter_map(|rule| {
            after.get(&rule.lhs, rule.rhs).map(|now| {
                (
                    rule.kind(),
                    now.support() - rule.support(),
                    now.confidence() - rule.confidence(),
                )
            })
        })
        .collect()
}

#[test]
fn case2_unannotated_tuples_only_lower_s_and_keep_a2a_confidence() {
    for seed in 0..12u64 {
        let ds = generate(&GeneratorConfig::tiny(seed));
        let mut rel = ds.relation;
        let before = rel.clone();
        let mut rng = StdRng::seed_from_u64(seed + 100);
        let tuples = random_unannotated_tuples(&mut rel, &mut rng, 15, 4);
        rel.extend(tuples);
        for (kind, ds_, dc) in deltas(&before, &rel) {
            assert!(ds_ <= 1e-12, "case2 support rose (seed {seed})");
            match kind {
                RuleKind::DataToAnnotation => {
                    assert!(dc <= 1e-12, "case2 d2a confidence rose (seed {seed})")
                }
                RuleKind::AnnotationToAnnotation => assert!(
                    dc.abs() <= 1e-12,
                    "case2 a2a confidence changed (seed {seed})"
                ),
            }
        }
    }
}

#[test]
fn case3_annotations_never_lower_d2a_metrics_or_any_support() {
    for seed in 0..12u64 {
        let ds = generate(&GeneratorConfig::tiny(seed));
        let mut rel = ds.relation;
        let before = rel.clone();
        let mut rng = StdRng::seed_from_u64(seed + 200);
        let batch = random_annotation_batch(&rel, &mut rng, 20);
        rel.apply_annotation_batch(batch);
        for (kind, ds_, dc) in deltas(&before, &rel) {
            assert!(ds_ >= -1e-12, "case3 support fell (seed {seed})");
            if kind == RuleKind::DataToAnnotation {
                assert!(dc >= -1e-12, "case3 d2a confidence fell (seed {seed})");
            }
        }
    }
}

#[test]
fn case3_a2a_confidence_can_genuinely_decrease_via_lhs() {
    // Engineered Fig. 12 Step 2 situation: adding annotation A (the LHS of
    // {A} ⇒ B) to a tuple lacking B dilutes the rule's confidence.
    let mut rel = annomine::store::AnnotatedRelation::new("R");
    let x = rel.vocab_mut().data("1");
    let a = rel.vocab_mut().annotation("A");
    let b = rel.vocab_mut().annotation("B");
    for _ in 0..8 {
        rel.insert(annomine::store::Tuple::new([x], [a, b]));
    }
    let victim = rel.insert(annomine::store::Tuple::new([x], []));
    let mut miner = IncrementalMiner::mine_initial(
        &rel,
        IncrementalConfig {
            thresholds: Thresholds::new(0.3, 0.5),
            ..Default::default()
        },
    );
    let rule_before = miner
        .rules()
        .get(&annomine::mine::ItemSet::single(a), b)
        .expect("{A} ⇒ B")
        .clone();
    assert_eq!(rule_before.lhs_count, 8);

    miner.apply_annotations(
        &mut rel,
        [annomine::store::AnnotationUpdate {
            tuple: victim,
            annotation: a,
        }],
    );
    assert!(miner.verify_against_remine(&rel));
    let rule_after = miner
        .rules()
        .get(&annomine::mine::ItemSet::single(a), b)
        .expect("{A} ⇒ B still valid")
        .clone();
    assert_eq!(
        rule_after.lhs_count, 9,
        "LHS denominator grew (Fig. 12 Step 2)"
    );
    assert_eq!(rule_after.union_count, 8, "numerator unchanged");
    assert!(
        rule_after.confidence() < rule_before.confidence(),
        "a2a confidence must drop when the new annotation joins only the LHS"
    );
}

#[test]
fn case1_annotated_tuples_can_move_everything_but_stay_exact() {
    // Case 1 has no forbidden directions; the guarantee is exactness.
    for seed in 0..8u64 {
        let ds = generate(&GeneratorConfig::tiny(seed));
        let mut rel = ds.relation;
        let mut miner = IncrementalMiner::mine_initial(
            &rel,
            IncrementalConfig {
                thresholds: Thresholds::new(0.2, 0.6),
                ..Default::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(seed + 300);
        let tuples = random_annotated_tuples(&mut rel, &mut rng, 10, 4);
        miner.add_annotated_tuples(&mut rel, tuples);
        assert!(miner.verify_against_remine(&rel), "seed {seed}");
    }
}
