//! Integration test: the provenance algebra and the miner must agree on
//! counts — `support` as computed by frequent-itemset mining equals the
//! bag-semantics annotation computed by the K-relation algebra, and
//! polynomial provenance factors through every concrete semiring.

use annomine::mine::{mine_with, ItemSet, Miner, MiningMode, Thresholds};
use annomine::semiring::prelude::*;
use annomine::store::{generate, GeneratorConfig, Item, KRelation};

#[test]
fn miner_counts_match_bag_semantics_queries() {
    let ds = generate(&GeneratorConfig::tiny(9));
    let rel = &ds.relation;
    let result = mine_with(
        rel,
        &Thresholds::new(0.1, 0.0),
        MiningMode::Annotated,
        Miner::Apriori,
    );

    // For each frequent singleton data value, the miner's count must equal
    // the multiplicity computed by a bag-semantics selection query.
    let mut checked = 0;
    for (itemset, count) in result.itemsets.iter() {
        if itemset.len() != 1 || !itemset.items()[0].is_data() {
            continue;
        }
        let v = itemset.items()[0];
        let algebra_count: u64 = rel
            .iter()
            .filter(|(_, t)| t.contains(v))
            .map(|_| 1u64)
            .sum();
        assert_eq!(count, algebra_count, "miner vs scan disagree on {v:?}");
        checked += 1;
    }
    assert!(checked > 0, "no singleton data values were frequent");
}

#[test]
fn annotation_support_equals_boolean_query_cardinality() {
    let ds = generate(&GeneratorConfig::tiny(10));
    let rel = &ds.relation;
    // Bool2-annotated unary relation over the first data column: a tuple
    // appears iff it exists — cardinality equals distinct first values.
    let k: KRelation<Bool2> = KRelation::from_annotated(rel, 1, &|_| Bool2::one());
    let distinct_firsts: std::collections::BTreeSet<Item> = rel
        .iter()
        .filter_map(|(_, t)| t.data().first().copied())
        .collect();
    assert_eq!(k.len(), distinct_firsts.len());
}

#[test]
fn polynomial_provenance_factors_through_concrete_semirings() {
    let ds = generate(&GeneratorConfig::tiny(11));
    let rel = &ds.relation;
    let poly: KRelation<Polynomial> = KRelation::from_annotated(rel, 2, &Polynomial::var);
    let merged = poly.project(&[0]);

    // eval ∘ query == query ∘ eval for three different targets.
    let into_nat = merged.map_annotations(&|p: &Polynomial| p.eval(&|_| Natural::one()));
    let direct_nat: KRelation<Natural> =
        KRelation::from_annotated(rel, 2, &|_| Natural::one()).project(&[0]);
    assert_eq!(into_nat, direct_nat, "ℕ factorisation");

    let into_bool = merged.map_annotations(&|p: &Polynomial| p.eval(&|_| Bool2::one()));
    let direct_bool: KRelation<Bool2> =
        KRelation::from_annotated(rel, 2, &|_| Bool2::one()).project(&[0]);
    assert_eq!(into_bool, direct_bool, "B factorisation");

    let val = |v: Var| Tropical::finite(u64::from(v.0 % 13));
    let into_trop = merged.map_annotations(&|p: &Polynomial| p.eval(&val));
    let direct_trop: KRelation<Tropical> = KRelation::from_annotated(rel, 2, &val).project(&[0]);
    assert_eq!(into_trop, direct_trop, "tropical factorisation");
}

#[test]
fn mining_the_same_relation_is_stable_across_algebra_views() {
    // Building K-relations from an annotated relation must not disturb it.
    let ds = generate(&GeneratorConfig::tiny(12));
    let rel = ds.relation;
    let before = mine_with(
        &rel,
        &Thresholds::new(0.2, 0.6),
        MiningMode::Annotated,
        Miner::Apriori,
    );
    let _k: KRelation<Lineage> = KRelation::from_annotated(&rel, 2, &|v| Lineage::var(v));
    let after = mine_with(
        &rel,
        &Thresholds::new(0.2, 0.6),
        MiningMode::Annotated,
        Miner::Apriori,
    );
    assert!(before.rules.identical_to(&after.rules));
    let _ = ItemSet::empty();
}
