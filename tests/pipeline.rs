//! Integration test: the full synthetic pipeline — generation, mining,
//! evolution under a mixed workload, exploitation — across all three
//! crates, verifying the planted ground truth is recovered and the
//! incremental state never diverges.

use annomine::mine::{
    mine_rules, recommend_missing, score_recommendations, IncrementalConfig, IncrementalMiner,
    ItemSet, Miner, MiningMode, Thresholds,
};
use annomine::store::{
    generate, hide_annotations, random_annotation_batch, GeneratorConfig, TupleId,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn planted_rules_are_recovered_by_mining() {
    let ds = generate(&GeneratorConfig::tiny(123));
    let thresholds = Thresholds::new(0.15, 0.6);
    let rules = mine_rules(&ds.relation, &thresholds);
    for planted in &ds.planted {
        let lhs = ItemSet::from_unsorted(planted.lhs.clone());
        let rule = rules.get(&lhs, planted.rhs);
        assert!(
            rule.is_some(),
            "planted rule {:?} ⇒ {:?} was not recovered",
            planted.lhs,
            planted.rhs
        );
        let rule = rule.unwrap();
        assert!(
            rule.confidence() > planted.confidence - 0.15,
            "recovered confidence {} too low",
            rule.confidence()
        );
    }
}

#[test]
fn all_four_miners_agree_on_generated_data() {
    let ds = generate(&GeneratorConfig::tiny(77));
    let thresholds = Thresholds::new(0.2, 0.6);
    let reference = annomine::mine::mine_with(
        &ds.relation,
        &thresholds,
        MiningMode::Annotated,
        Miner::Apriori,
    );
    for miner in [Miner::AprioriDirectScan, Miner::FpGrowth, Miner::Eclat] {
        let other =
            annomine::mine::mine_with(&ds.relation, &thresholds, MiningMode::Annotated, miner);
        assert_eq!(reference.itemsets.sorted(), other.itemsets.sorted());
        assert!(reference.rules.identical_to(&other.rules));
    }
}

#[test]
fn long_mixed_workload_never_diverges() {
    let ds = generate(&GeneratorConfig::tiny(31));
    let mut rel = ds.relation;
    let mut miner = IncrementalMiner::mine_initial(
        &rel,
        IncrementalConfig {
            thresholds: Thresholds::new(0.2, 0.6),
            retention: 0.5,
            ..Default::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(404);
    for round in 0..10 {
        match round % 4 {
            0 => {
                let batch = random_annotation_batch(&rel, &mut rng, 12);
                miner.apply_annotations(&mut rel, batch);
            }
            1 => {
                let tuples = annomine::store::random_annotated_tuples(&mut rel, &mut rng, 6, 4);
                miner.add_annotated_tuples(&mut rel, tuples);
            }
            2 => {
                let tuples = annomine::store::random_unannotated_tuples(&mut rel, &mut rng, 6, 4);
                miner.add_unannotated_tuples(&mut rel, tuples);
            }
            _ => {
                let victims: Vec<TupleId> = rel.iter().map(|(tid, _)| tid).take(3).collect();
                miner.delete_tuples(&mut rel, &victims);
            }
        }
        rel.check_consistency().expect("store consistency");
        assert!(
            miner.verify_against_remine(&rel),
            "diverged from re-mining at round {round}"
        );
    }
    // The workload ran incrementally, not by re-mining every step.
    assert!(
        miner.stats().full_remines <= 2,
        "too many fallback re-mines"
    );
}

#[test]
fn hidden_annotation_recovery_beats_chance() {
    let ds = generate(&GeneratorConfig::tiny(55));
    let mut rng = StdRng::seed_from_u64(808);
    let (damaged, hidden) = hide_annotations(&ds.relation, &mut rng, 0.2);
    assert!(!hidden.is_empty());
    let rules = mine_rules(&damaged, &Thresholds::new(0.1, 0.5));
    let recs = recommend_missing(&damaged, &rules);
    let quality = score_recommendations(&recs, &hidden);
    // Planted implications at ~0.95 confidence: recall should be solid and
    // precision far above the ~2% density of random (tuple, annotation)
    // pairs.
    assert!(
        quality.recall() > 0.5,
        "recall {} too low",
        quality.recall()
    );
    assert!(
        quality.precision() > 0.3,
        "precision {} too low",
        quality.precision()
    );
}

#[test]
fn candidate_rules_sit_strictly_between_thresholds() {
    let ds = generate(&GeneratorConfig::tiny(66));
    let thresholds = Thresholds::new(0.3, 0.8);
    let miner = IncrementalMiner::mine_initial(
        &ds.relation,
        IncrementalConfig {
            thresholds,
            retention: 0.5,
            ..Default::default()
        },
    );
    for rule in miner.candidate_rules().rules() {
        assert!(
            !rule.meets(&thresholds),
            "candidate rule meets the strict thresholds"
        );
    }
    for rule in miner.rules().rules() {
        assert!(
            rule.meets(&thresholds),
            "valid rule misses the strict thresholds"
        );
    }
}
