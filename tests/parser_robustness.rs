//! Robustness: every text-format parser in the workspace must return
//! `Err`/skip on arbitrary input — never panic — and accept its own
//! writers' output. Exercised with random byte soups and with mutations of
//! valid documents.

use annomine::mine::IncrementalMiner;
use annomine::store::{
    parse_annotation_batch, parse_dataset, parse_rules, snapshot_from_string, Vocabulary,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn dataset_parser_never_panics(text in "\\PC*") {
        let _ = parse_dataset("r", &text);
    }

    #[test]
    fn dataset_parser_accepts_token_lines(
        lines in proptest::collection::vec("[ -~]{0,40}", 0..10),
    ) {
        // Printable-ASCII lines: parsing must not panic and every parsed
        // tuple must be internally consistent.
        let text = lines.join("\n");
        if let Ok(rel) = parse_dataset("r", &text) {
            rel.check_consistency().map_err(TestCaseError::fail)?;
        }
    }

    #[test]
    fn annotation_batch_parser_never_panics(text in "\\PC*") {
        let mut vocab = Vocabulary::new();
        let _ = parse_annotation_batch(&mut vocab, &text);
    }

    #[test]
    fn generalization_rules_parser_never_panics(text in "\\PC*") {
        let mut vocab = Vocabulary::new();
        let _ = parse_rules(&text, &mut vocab);
    }

    #[test]
    fn rules_file_parser_never_panics(text in "\\PC*") {
        let mut vocab = Vocabulary::new();
        let _ = annomine::mine::parse_rules_file(&mut vocab, &text);
    }

    #[test]
    fn snapshot_parser_never_panics(text in "\\PC*") {
        let _ = snapshot_from_string(&text);
    }

    #[test]
    fn snapshot_parser_survives_header_plus_junk(junk in "\\PC*") {
        let text = format!("annodb-snapshot v1\n{junk}\nend\n");
        if let Ok(rel) = snapshot_from_string(&text) {
            rel.check_consistency().map_err(TestCaseError::fail)?;
        }
    }

    #[test]
    fn checkpoint_parser_never_panics(text in "\\PC*") {
        let _ = IncrementalMiner::checkpoint_from_string(&text);
    }

    #[test]
    fn checkpoint_parser_survives_header_plus_junk(junk in "[ -~\\n]{0,200}") {
        let text = format!("annomine-checkpoint v1\n{junk}\nend\n");
        let _ = IncrementalMiner::checkpoint_from_string(&text);
    }
}
