//! Integration test: replay the paper's application workflow end-to-end
//! through the text formats — load a Fig. 4 dataset, mine rules (menu
//! options 1/2), write a Fig. 7 rule file, apply a Fig. 14 annotation
//! batch, and verify incremental maintenance against re-mining.

use annomine::mine::{
    mine_annotation_to_annotation, mine_data_to_annotation, mine_rules, parse_rules_file,
    rules_to_string, IncrementalConfig, IncrementalMiner, RuleKind, Thresholds,
};
use annomine::store::{
    dataset_to_string, format_annotation_batch, parse_annotation_batch, parse_dataset,
};

/// A dataset shaped like Fig. 4, engineered so that both rule kinds exist:
/// {28, 85} ⇒ Annot_1 (9/10) and {Annot_1} ⇒ Annot_5 (8/9).
fn paper_like_dataset() -> String {
    let mut lines = Vec::new();
    for i in 0..8 {
        lines.push(format!("28 85 {} Annot_1 Annot_5", 100 + i));
    }
    lines.push("28 85 200 Annot_1".to_string());
    lines.push("28 85 201".to_string());
    lines.push("40 41 202".to_string());
    lines.push("40 41 203".to_string());
    lines.join("\n")
}

#[test]
fn menu_option_1_and_2_discover_both_rule_kinds() {
    let rel = parse_dataset("db", &paper_like_dataset()).unwrap();
    let thresholds = Thresholds::new(0.3, 0.8);

    let d2a = mine_data_to_annotation(&rel, &thresholds);
    assert!(d2a
        .rules()
        .iter()
        .all(|r| r.kind() == RuleKind::DataToAnnotation));
    let annot1 = rel
        .vocab()
        .get(annomine::store::ItemKind::Annotation, "Annot_1")
        .unwrap();
    let x28 = rel
        .vocab()
        .get(annomine::store::ItemKind::Data, "28")
        .unwrap();
    let x85 = rel
        .vocab()
        .get(annomine::store::ItemKind::Data, "85")
        .unwrap();
    let headline = d2a
        .get(
            &annomine::mine::ItemSet::from_unsorted(vec![x28, x85]),
            annot1,
        )
        .expect("{28,85} ⇒ Annot_1");
    assert_eq!(headline.union_count, 9);
    assert_eq!(headline.lhs_count, 10);

    let a2a = mine_annotation_to_annotation(&rel, &thresholds);
    assert!(a2a
        .rules()
        .iter()
        .all(|r| r.kind() == RuleKind::AnnotationToAnnotation));
    let annot5 = rel
        .vocab()
        .get(annomine::store::ItemKind::Annotation, "Annot_5")
        .unwrap();
    let chain = a2a
        .get(&annomine::mine::ItemSet::single(annot1), annot5)
        .expect("{Annot_1} ⇒ Annot_5");
    assert_eq!(chain.union_count, 8);
    assert_eq!(chain.lhs_count, 9);
}

#[test]
fn rule_file_roundtrips_through_fig7_format() {
    let rel = parse_dataset("db", &paper_like_dataset()).unwrap();
    let rules = mine_rules(&rel, &Thresholds::new(0.3, 0.8));
    assert!(!rules.is_empty());
    let text = rules_to_string(&rules, rel.vocab());
    let mut vocab = rel.vocab().clone();
    let parsed = parse_rules_file(&mut vocab, &text).unwrap();
    assert_eq!(parsed.len(), rules.len());
    for p in &parsed {
        let original = rules.get(&p.lhs, p.rhs).expect("parsed rule exists");
        assert!((p.confidence - original.confidence()).abs() < 1e-3);
        assert!((p.support - original.support()).abs() < 1e-3);
    }
}

#[test]
fn dataset_files_roundtrip() {
    let text = paper_like_dataset();
    let rel = parse_dataset("db", &text).unwrap();
    let rel2 = parse_dataset("db", &dataset_to_string(&rel)).unwrap();
    assert_eq!(rel.len(), rel2.len());
    // Mining results must be identical across the round-trip.
    let t = Thresholds::new(0.3, 0.8);
    assert_eq!(mine_rules(&rel, &t).len(), mine_rules(&rel2, &t).len());
}

#[test]
fn fig14_batch_drives_incremental_maintenance() {
    let mut rel = parse_dataset("db", &paper_like_dataset()).unwrap();
    let thresholds = Thresholds::new(0.3, 0.8);
    let mut miner = IncrementalMiner::mine_initial(
        &rel,
        IncrementalConfig {
            thresholds,
            ..Default::default()
        },
    );

    // Fig. 14 format: "tuple: annotation". Annotate the gap tuple (id 9)
    // and the two outsiders.
    let batch_text = "9: Annot_1\n10: Annot_9\n11: Annot_9\n";
    let updates = parse_annotation_batch(rel.vocab_mut(), batch_text).unwrap();
    // Round-trip the batch through its own format first.
    let rendered = format_annotation_batch(rel.vocab(), &updates);
    assert_eq!(rendered, batch_text);

    let delta = miner.apply_annotations(&mut rel, updates);
    assert_eq!(delta.len(), 3);
    assert!(miner.verify_against_remine(&rel), "incremental ≡ re-mine");

    // {28,85} ⇒ Annot_1 is now exact 10/10.
    let annot1 = rel
        .vocab()
        .get(annomine::store::ItemKind::Annotation, "Annot_1")
        .unwrap();
    let x28 = rel
        .vocab()
        .get(annomine::store::ItemKind::Data, "28")
        .unwrap();
    let x85 = rel
        .vocab()
        .get(annomine::store::ItemKind::Data, "85")
        .unwrap();
    let rule = miner
        .rules()
        .get(
            &annomine::mine::ItemSet::from_unsorted(vec![x28, x85]),
            annot1,
        )
        .unwrap();
    assert_eq!(rule.union_count, 10);
    assert_eq!(rule.lhs_count, 10);
}

#[test]
fn all_three_cases_compose_through_text_formats() {
    let mut rel = parse_dataset("db", &paper_like_dataset()).unwrap();
    let thresholds = Thresholds::new(0.25, 0.7);
    let mut miner = IncrementalMiner::mine_initial(
        &rel,
        IncrementalConfig {
            thresholds,
            ..Default::default()
        },
    );

    // Case 1: annotated tuples arrive as dataset lines.
    let case1 = "28 85 300 Annot_1 Annot_5\n28 85 301 Annot_1\n";
    let mut tuples = Vec::new();
    for line in case1.lines() {
        if let Some(t) = annomine::store::parse_tuple_line(rel.vocab_mut(), line) {
            tuples.push(t);
        }
    }
    miner.add_annotated_tuples(&mut rel, tuples);
    assert!(miner.verify_against_remine(&rel));

    // Case 2: un-annotated tuples.
    let case2 = "50 51 400\n50 51 401\n";
    let mut tuples = Vec::new();
    for line in case2.lines() {
        if let Some(t) = annomine::store::parse_tuple_line(rel.vocab_mut(), line) {
            tuples.push(t);
        }
    }
    miner.add_unannotated_tuples(&mut rel, tuples);
    assert!(miner.verify_against_remine(&rel));

    // Case 3: a Fig. 14 batch.
    let updates = parse_annotation_batch(rel.vocab_mut(), "14: Annot_1\n15: Annot_1\n").unwrap();
    miner.apply_annotations(&mut rel, updates);
    assert!(miner.verify_against_remine(&rel));
}
