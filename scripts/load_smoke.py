#!/usr/bin/env python3
"""End-to-end smoke for the sharded `annod` front end.

Usage: load_smoke.py [path-to-annod] [protocol-addr] [metrics-addr]

Boots the daemon with an explicit shard count, drives one full protocol
session over a real TCP socket (including the `class` QoS verb), checks
the admission families on the Prometheus metrics listener, and shuts the
process down. This is the out-of-process complement to the in-process
`serve` bench: it proves the shipped binary actually serves the sharded
reactor path, not just the library.
"""

import socket
import subprocess
import sys
import time
import urllib.request

BOOT_DEADLINE_SECS = 30


def connect(addr, deadline):
    """Retry until the daemon's listener is up (or the deadline passes)."""
    host, port = addr.rsplit(":", 1)
    last = None
    while time.monotonic() < deadline:
        try:
            sock = socket.create_connection((host, int(port)), timeout=10)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            return sock
        except OSError as exc:
            last = exc
            time.sleep(0.1)
    raise SystemExit(f"annod never came up on {addr}: {last}")


class Session:
    def __init__(self, sock):
        self.io = sock.makefile("rw", encoding="utf-8", newline="\n")
        self.expect_line("OK annod ready")

    def expect_line(self, prefix):
        line = self.io.readline().rstrip("\n")
        if not line.startswith(prefix):
            raise SystemExit(f"expected {prefix!r}, got {line!r}")
        return line

    def cmd(self, line, prefix):
        """One command, one reply line."""
        self.io.write(line + "\n")
        self.io.flush()
        return self.expect_line(prefix)

    def cmd_block(self, line, prefix):
        """One command, a block reply through the `.` terminator."""
        self.io.write(line + "\n")
        self.io.flush()
        block = [self.expect_line(prefix)]
        while True:
            reply = self.io.readline().rstrip("\n")
            block.append(reply)
            if reply == ".":
                return "\n".join(block)


def main(argv):
    annod = argv[1] if len(argv) > 1 else "target/release/annod"
    addr = argv[2] if len(argv) > 2 else "127.0.0.1:7191"
    metrics_addr = argv[3] if len(argv) > 3 else "127.0.0.1:7192"
    proc = subprocess.Popen([annod, "serve", addr, "shards", "2", "metrics", metrics_addr])
    deadline = time.monotonic() + BOOT_DEADLINE_SECS
    try:
        session = Session(connect(addr, deadline))
        session.cmd("ping", "OK pong")
        session.cmd("open db 0.4 0.7", "OK open db")
        for _ in range(3):
            session.cmd("row db 28 85 Annot_1", "OK queued")
        session.cmd("row db 28 85", "OK queued")
        session.cmd("mine db", "OK mined rules=")
        session.cmd_block("rules db top 5", "OK")

        # The QoS verb round-trips and shows up in stats + the scrape.
        session.cmd("class db", "OK class db interactive")
        session.cmd("class db bulk", "OK class db bulk")
        stats = session.cmd_block("stats db", "OK")
        for needle in ("qos_class=bulk", "queue_cap=", "admission_shed=0"):
            if needle not in stats:
                raise SystemExit(f"stats db lacks {needle!r}:\n{stats}")

        with urllib.request.urlopen(f"http://{metrics_addr}/metrics", timeout=10) as rsp:
            scrape = rsp.read().decode("utf-8")
        for needle in (
            'anno_admission_queue_depth{dataset="db",class="bulk"}',
            'anno_admission_bulk_class{dataset="db"} 1',
            "anno_admission_shed_ops_total",
            "anno_admission_backpressure_stalls_total",
        ):
            if needle not in scrape:
                raise SystemExit(f"/metrics lacks {needle!r}")

        session.cmd("quit", "OK bye")
        print("load-smoke: OK (sharded serve, class verb, admission metrics)")
        return 0
    finally:
        proc.terminate()
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            proc.kill()


if __name__ == "__main__":
    sys.exit(main(sys.argv))
