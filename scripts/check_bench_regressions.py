#!/usr/bin/env python3
"""Fail the bench-smoke job on a measured regression against BENCH_*.json.

Usage: check_bench_regressions.py <bench-log> <BENCH_a.json> [<BENCH_b.json>...]

The bench log is the stdout of one or more `cargo bench` runs using the
vendored criterion stand-in, whose report lines look like:

    bench: vocab/10000/persistent_drain/256       426.83µs/iter  (n=20)

Each BENCH_*.json records claims under `results_ns_per_iter` as a nested
object; flattening its keys with `/` yields benchmark labels, optionally
missing the leading group stem (e.g. `BENCH_vocab.json` stores
`10000/persistent_drain/256` for the label `vocab/10000/...`).

Only benchmarks present in BOTH the log and a baseline are compared —
quick-mode runs legitimately skip the big sizes. A measured time more
than TOLERANCE x the recorded claim fails the job: generous enough that
runner-speed variance never trips it, tight enough that a real
order-of-magnitude regression (or a bench silently measuring nothing,
reported as ~0) cannot land unnoticed. Measurements *faster* than the
claim never fail.
"""

import json
import re
import sys

TOLERANCE = 3.0

BENCH_LINE = re.compile(
    r"^bench:\s+(?P<label>\S+)\s+(?P<value>[0-9.]+)(?P<unit>ns|µs|us|ms|s)/iter"
)

UNIT_NS = {"ns": 1.0, "µs": 1e3, "us": 1e3, "ms": 1e6, "s": 1e9}


def flatten(node, prefix=""):
    """Flatten nested dicts of numbers into {'a/b/c': ns} claims."""
    out = {}
    if isinstance(node, dict):
        for key, value in node.items():
            path = f"{prefix}/{key}" if prefix else str(key)
            out.update(flatten(value, path))
    elif isinstance(node, (int, float)):
        out[prefix] = float(node)
    return out


def load_baselines(paths):
    """Merge all baseline files into {label: (ns, source)} with stem aliases."""
    claims = {}
    for path in paths:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
        stem = re.sub(r"^BENCH_|\.json$", "", path.rsplit("/", 1)[-1])
        for label, ns in flatten(doc.get("results_ns_per_iter", {})).items():
            claims[label] = (ns, path)
            # BENCH_vocab.json's `10000/...` keys name the `vocab/10000/...`
            # benchmarks; register the stem-prefixed alias too.
            claims.setdefault(f"{stem}/{label}", (ns, path))
    return claims


def parse_log(path):
    measured = {}
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            match = BENCH_LINE.match(line.strip())
            if match:
                ns = float(match.group("value")) * UNIT_NS[match.group("unit")]
                measured[match.group("label")] = ns
    return measured


def main(argv):
    if len(argv) < 3:
        print(__doc__, file=sys.stderr)
        return 2
    log_path, baseline_paths = argv[1], argv[2:]
    claims = load_baselines(baseline_paths)
    measured = parse_log(log_path)
    if not measured:
        print(f"error: no `bench:` lines found in {log_path}", file=sys.stderr)
        return 2

    compared = 0
    failures = []
    for label, got_ns in sorted(measured.items()):
        claim = claims.get(label)
        if claim is None:
            print(f"  skip   {label}: no recorded claim")
            continue
        claim_ns, source = claim
        compared += 1
        ratio = got_ns / claim_ns if claim_ns else float("inf")
        verdict = "FAIL" if ratio > TOLERANCE else "ok"
        print(
            f"  {verdict:<6} {label}: measured {got_ns / 1e3:.1f}µs vs "
            f"claimed {claim_ns / 1e3:.1f}µs ({ratio:.2f}x, {source})"
        )
        if ratio > TOLERANCE:
            failures.append(label)

    if compared == 0:
        print("error: no benchmark overlapped a recorded claim", file=sys.stderr)
        return 2
    print(f"checked {compared} benchmarks against {len(baseline_paths)} baselines")
    if failures:
        print(
            f"error: {len(failures)} benchmark(s) regressed past {TOLERANCE}x: "
            + ", ".join(failures),
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
