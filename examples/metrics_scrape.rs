//! Scrape a live `annod` metrics endpoint over plain TCP.
//!
//! Opens a durable dataset, drives enough traffic to light up every
//! instrument (drains, queries, fsyncs, an auto-checkpoint), then does
//! what a Prometheus poller does: one `GET /metrics` over a raw TCP
//! socket against the second listener, parsing the p99 drain latency and
//! a few headline series out of the text exposition.
//!
//! Run with: `cargo run --example metrics_scrape`

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

use annomine::mine::Thresholds;
use annomine::service::dataset::DurabilityOptions;
use annomine::service::server::serve_metrics_listener;
use annomine::service::{
    CheckpointPolicy, Service, ServiceConfig, SyncPolicy, UpdateOp, WalOptions,
};
use annomine::store::TupleId;

fn main() -> std::io::Result<()> {
    // ------------------------------------------------------------------
    // 1. A durable dataset under an auto-checkpoint policy.
    // ------------------------------------------------------------------
    let dir = std::env::temp_dir().join(format!("annomine-scrape-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let service = Arc::new(Service::new());
    let config = ServiceConfig {
        thresholds: Thresholds::new(0.3, 0.8),
        ..Default::default()
    };
    let options = DurabilityOptions {
        wal: WalOptions {
            sync: SyncPolicy::Grouped(service.group_committer()),
            ..WalOptions::default()
        },
        auto_checkpoint: CheckpointPolicy {
            replayed_records: Some(8),
            ..Default::default()
        },
        ..Default::default()
    };
    let ds = service
        .open_durable_with("curation", config, &dir, options)
        .expect("durable dataset");

    // ------------------------------------------------------------------
    // 2. Traffic: inserts, a mine, annotate drains, rule queries.
    // ------------------------------------------------------------------
    let rows: Vec<String> = (0..500)
        .map(|i| {
            if i % 10 == 0 {
                format!("{} {} Seed", i % 97, (i * 7 + 1) % 97)
            } else {
                format!("{} {}", i % 97, (i * 7 + 1) % 97)
            }
        })
        .collect();
    ds.enqueue(UpdateOp::InsertRows(rows)).expect("load");
    ds.flush().expect("loaded");
    ds.mine().expect("mined");
    for batch in 0..16 {
        let annotations = (0..8)
            .map(|i| (TupleId(batch * 8 + i), format!("Curated_{batch}")))
            .collect();
        ds.enqueue(UpdateOp::AnnotateNamed(annotations))
            .expect("annotate");
        ds.flush().expect("drained");
    }
    let snap = ds.snapshot().expect("published");
    println!(
        "drove {} tuples to epoch {}; {} maintenance events so far",
        snap.db_size(),
        snap.epoch(),
        ds.events_total()
    );
    for event in ds.events(4) {
        println!("  event {event}");
    }
    // Two ring samples a few ms apart give the windowed rates a window.
    service.sample_now();
    std::thread::sleep(std::time::Duration::from_millis(10));
    service.sample_now();

    // ------------------------------------------------------------------
    // 3. The scrape: what `annod serve` exposes on its second listener.
    // ------------------------------------------------------------------
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let scrape_service = Arc::clone(&service);
    std::thread::spawn(move || serve_metrics_listener(scrape_service, listener));

    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(b"GET /metrics HTTP/1.0\r\nHost: annod\r\n\r\n")?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("header/body split in HTTP response");
    println!(
        "\nGET http://{addr}/metrics -> {} ({} bytes, {} series lines)",
        head.lines().next().unwrap_or(""),
        body.len(),
        body.lines().filter(|l| !l.starts_with('#')).count()
    );

    // ------------------------------------------------------------------
    // 4. Parse the headline numbers a dashboard would chart.
    // ------------------------------------------------------------------
    let p99_drain = series(
        body,
        "anno_drain_latency_ns_quantile",
        &[("dataset", "curation"), ("quantile", "p99")],
    )
    .expect("p99 drain latency series");
    println!("p99 drain latency: {:.3} ms", p99_drain / 1e6);
    for (name, unit) in [
        ("anno_drains_total", "drains"),
        ("anno_wal_fsyncs_total", "fsyncs"),
        ("anno_auto_checkpoints_total", "auto-checkpoints"),
        ("anno_live_tuples", "live tuples"),
    ] {
        if let Some(v) = series(body, name, &[("dataset", "curation")]) {
            println!("{name}: {v} {unit}");
        }
    }
    if let Some(rate) = series(body, "anno_drains_per_sec", &[("dataset", "curation")]) {
        println!("windowed drain rate: {rate:.1}/s over the last minute");
    }

    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}

/// Find one sample in the exposition: a line `name{labels} value` whose
/// label set contains every `(key, value)` pair in `labels`.
fn series(body: &str, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
    body.lines().find_map(|line| {
        let rest = line.strip_prefix(name)?;
        let (label_part, value) = match rest.strip_prefix('{') {
            Some(rest) => rest.split_once("} ")?,
            None => ("", rest.strip_prefix(' ')?),
        };
        labels
            .iter()
            .all(|(k, v)| label_part.contains(&format!("{k}=\"{v}\"")))
            .then(|| value.trim().parse().ok())?
    })
}
