//! The paper's headline experiment as a walkthrough: incremental rule
//! maintenance vs. re-running Apriori (§4.3, Fig. 16), on a generated
//! database the size of the paper's (≈ 8000 tuples, α = 0.4, β = 0.8).
//!
//! Exercises all three evolution cases plus the future-work deletions, and
//! verifies after every batch that the maintained rules are *identical* to
//! a from-scratch mine — the paper's own validation methodology.
//!
//! ```text
//! cargo run --release --example incremental_curation
//! ```

use std::time::Instant;

use annomine::mine::{mine_rules, IncrementalConfig, IncrementalMiner, Thresholds};
use annomine::store::{
    generate, random_annotated_tuples, random_annotation_batch, random_unannotated_tuples,
    GeneratorConfig, TupleId,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let thresholds = Thresholds::paper(); // α = 0.4, β = 0.8 (§4.3)
    let mut dataset = generate(&GeneratorConfig::paper_scale(7));
    let rel = &mut dataset.relation;
    let mut rng = StdRng::seed_from_u64(99);

    println!("database: {} tuples (paper: ≈8000)", rel.len());
    println!("thresholds: support ≥ {}, confidence ≥ {}\n", 0.4, 0.8);

    let t0 = Instant::now();
    let mut miner = IncrementalMiner::mine_initial(
        rel,
        IncrementalConfig {
            thresholds,
            ..Default::default()
        },
    );
    let initial_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!(
        "initial Apriori mine: {:.1} ms, {} rules ({} near-threshold candidates retained)",
        initial_ms,
        miner.rules().len(),
        miner.candidate_rules().len()
    );

    let case = |label: &str, incremental_ms: f64, rel: &annomine::store::AnnotatedRelation| {
        let t = Instant::now();
        let fresh = mine_rules(rel, &thresholds);
        let remine_ms = t.elapsed().as_secs_f64() * 1e3;
        let speedup = remine_ms / incremental_ms.max(1e-6);
        println!(
            "{label:<42} incremental {incremental_ms:>8.2} ms | full re-mine {remine_ms:>8.1} ms | {speedup:>6.1}x faster",
        );
        fresh
    };

    // Case 3 — the paper's main contribution: annotate existing tuples.
    let batch = random_annotation_batch(rel, &mut rng, 400);
    let t = Instant::now();
    miner.apply_annotations(rel, batch);
    let ms = t.elapsed().as_secs_f64() * 1e3;
    let fresh = case("Case 3: +400 annotations (Figs. 12-13)", ms, rel);
    assert!(miner.rules().identical_to(&fresh), "Case 3 must be exact");

    // Case 1 — add annotated tuples.
    let tuples = random_annotated_tuples(rel, &mut rng, 200, 8);
    let t = Instant::now();
    miner.add_annotated_tuples(rel, tuples);
    let ms = t.elapsed().as_secs_f64() * 1e3;
    let fresh = case("Case 1: +200 annotated tuples", ms, rel);
    assert!(miner.rules().identical_to(&fresh), "Case 1 must be exact");

    // Case 2 — add un-annotated tuples.
    let tuples = random_unannotated_tuples(rel, &mut rng, 200, 8);
    let t = Instant::now();
    miner.add_unannotated_tuples(rel, tuples);
    let ms = t.elapsed().as_secs_f64() * 1e3;
    let fresh = case("Case 2: +200 un-annotated tuples", ms, rel);
    assert!(miner.rules().identical_to(&fresh), "Case 2 must be exact");

    // Future work (§6), implemented here: deletion.
    let victims: Vec<TupleId> = rel.iter().map(|(tid, _)| tid).take(100).collect();
    let t = Instant::now();
    miner.delete_tuples(rel, &victims);
    let ms = t.elapsed().as_secs_f64() * 1e3;
    let fresh = case("Deletion: -100 tuples (paper future work)", ms, rel);
    assert!(miner.rules().identical_to(&fresh), "deletion must be exact");

    let stats = miner.stats();
    println!(
        "\nmaintenance stats: {} full re-mines, {} case-3 batches, {} itemsets discovered via the annotation index",
        stats.full_remines, stats.case3_batches, stats.discovered_itemsets
    );
    println!(
        "remaining tuple budget before the next fallback re-mine: {}",
        miner.remaining_tuple_budget()
    );
    println!("\nAll four maintained rule sets were byte-identical to re-mining from scratch.");
}
