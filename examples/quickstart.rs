//! Quickstart: load a Fig. 4-style dataset, mine both kinds of
//! annotation correlations, and print a Fig. 7-style rule file.
//!
//! ```text
//! cargo run --example quickstart [min_support] [min_confidence]
//! ```

use annomine::mine::{mine_rules, rules_to_string, RuleKind, Thresholds};
use annomine::store::parse_dataset;

/// A miniature of the paper's running dataset (Fig. 4): numeric data-value
/// ids plus `Annot_k` annotation tokens, one tuple per line.
const DATASET: &str = "\
28 85 102 Annot_4 Annot_5
28 85 17 Annot_1
28 85 63 Annot_1
28 85 102 Annot_1 Annot_4
28 85 99 Annot_1
17 63 99
28 85 41 Annot_1 Annot_5
63 99 41 Annot_2
28 85 77 Annot_1
17 99 102 Annot_2 Annot_4
28 85 63 Annot_1 Annot_4
63 99 77
";

fn main() {
    let mut args = std::env::args().skip(1);
    let min_support: f64 = args
        .next()
        .map(|s| s.parse().expect("min_support must be a fraction"))
        .unwrap_or(0.25);
    let min_confidence: f64 = args
        .next()
        .map(|s| s.parse().expect("min_confidence must be a fraction"))
        .unwrap_or(0.8);

    let relation = parse_dataset("quickstart", DATASET).expect("embedded dataset parses");
    println!(
        "Loaded {} tuples over {} data values and {} annotations.",
        relation.len(),
        relation.vocab().count(annomine::store::ItemKind::Data),
        relation
            .vocab()
            .count(annomine::store::ItemKind::Annotation),
    );

    // Discover all data-to-annotation and annotation-to-annotation rules
    // (the paper's menu options 1 and 2) in one pass.
    let thresholds = Thresholds::new(min_support, min_confidence);
    let rules = mine_rules(&relation, &thresholds);

    let d2a = rules.of_kind(RuleKind::DataToAnnotation).count();
    let a2a = rules.of_kind(RuleKind::AnnotationToAnnotation).count();
    println!(
        "\nDiscovered {} rules at support ≥ {min_support}, confidence ≥ {min_confidence}:",
        rules.len()
    );
    println!("  {d2a} data-to-annotation, {a2a} annotation-to-annotation\n");

    // The Fig. 7 output format, sorted by confidence.
    print!("{}", rules_to_string(&rules, relation.vocab()));
}
