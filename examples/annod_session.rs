//! End-to-end `annod` client walkthrough: load a dataset, mine it, stream
//! updates through the batched write path, and query rules and top-k
//! recommendations — first through the typed `anno-service` API, then the
//! exact same session over the `annod` line protocol.
//!
//! Run with: `cargo run --example annod_session`

use std::sync::Arc;

use annomine::mine::Thresholds;
use annomine::service::protocol::Engine;
use annomine::service::query::top_k_for_tuple;
use annomine::service::{Service, ServiceConfig, UpdateOp};
use annomine::store::TupleId;

fn main() {
    // ------------------------------------------------------------------
    // 1. The typed API: what an embedding application uses.
    // ------------------------------------------------------------------
    println!("== typed API ==");
    let service = Arc::new(Service::new());
    let config = ServiceConfig {
        thresholds: Thresholds::new(0.4, 0.7),
        ..Default::default()
    };
    let ds = service.create("curation", config).expect("fresh dataset");

    // Load the Fig. 4-style running example: three annotated {28, 85}
    // tuples, one un-annotated, one unrelated.
    ds.enqueue(UpdateOp::InsertRows(vec![
        "28 85 Annot_1".into(),
        "28 85 Annot_1".into(),
        "28 85 Annot_1".into(),
        "28 85".into(),
        "17 99".into(),
    ]))
    .expect("load rows");
    ds.flush().expect("loaded");

    // Mine: publishes the first immutable snapshot.
    let snap = ds.mine().expect("initial mine");
    println!(
        "mined {} rules over {} tuples:",
        snap.rules().len(),
        snap.db_size()
    );
    for rule in snap.rules().rules() {
        println!("  {}", rule.render(snap.relation().vocab()));
    }

    // Top-k recommendations: tuple 3 is {28, 85} without the annotation.
    let recs = top_k_for_tuple(&snap, TupleId(3), 5).expect("live tuple");
    for r in &recs {
        println!(
            "recommend: add {} (conf={:.2}) because {}",
            r.name, r.confidence, r.rule
        );
    }

    // Stream updates: the curator accepts the recommendation, new rows
    // arrive. The queue coalesces and applies them incrementally; readers
    // holding `snap` are unaffected.
    ds.enqueue(UpdateOp::AnnotateNamed(vec![(
        TupleId(3),
        "Annot_1".into(),
    )]))
    .expect("accept recommendation");
    ds.enqueue(UpdateOp::InsertRows(vec![
        "17 99 Annot_2".into(),
        "17 99 Annot_2".into(),
    ]))
    .expect("new rows");
    ds.flush().expect("applied");

    let fresh = ds.snapshot().expect("published");
    println!(
        "after updates: epoch {} -> {}, {} tuples, {} rules (old snapshot still sees {})",
        snap.epoch(),
        fresh.epoch(),
        fresh.db_size(),
        fresh.rules().len(),
        snap.db_size(),
    );
    println!("exact vs re-mine: {}", ds.verify().expect("mined"));
    println!("metrics: {}", ds.metrics().render());

    // ------------------------------------------------------------------
    // 2. The same session as an `annod` protocol script.
    // ------------------------------------------------------------------
    println!("\n== annod protocol ==");
    let engine = Engine::new(Arc::new(Service::new()));
    let script = [
        "open curation 0.4 0.7",
        "row curation 28 85 Annot_1",
        "row curation 28 85 Annot_1",
        "row curation 28 85 Annot_1",
        "row curation 28 85",
        "row curation 17 99",
        "mine curation",
        "rules curation contains 28",
        "recommend curation tuple 3",
        "annotate curation 3 Annot_1",
        "flush curation",
        "recommend curation tuple 3",
        "stats curation",
        "verify curation",
    ];
    for line in script {
        println!("> {line}");
        print!("{}", engine.execute(line).to_text());
    }
}
