//! Provenance semirings under the annotated database (the substrate the
//! calibration hint asks for): one query, many annotation semantics.
//!
//! Builds a small K-relation pipeline and evaluates the *same* query under
//! set, bag, cost, clearance, and polynomial semantics — then demonstrates
//! that annotation generalization is a semiring homomorphism, i.e.
//! generalize-then-query equals query-then-generalize.
//!
//! ```text
//! cargo run --example provenance_tracking
//! ```

use annomine::semiring::prelude::*;
use annomine::store::{AnnotatedRelation, Item, KRelation, Tuple};

fn main() {
    // An annotated source table: measurements with lab-source annotations.
    let mut rel = AnnotatedRelation::new("measurements");
    let s1 = rel.vocab_mut().data("sample1");
    let s2 = rel.vocab_mut().data("sample2");
    let hi = rel.vocab_mut().data("high");
    let lo = rel.vocab_mut().data("low");
    let lab_a = rel.vocab_mut().annotation("lab:A");
    let lab_b = rel.vocab_mut().annotation("lab:B");
    rel.insert(Tuple::new([s1, hi], [lab_a]));
    rel.insert(Tuple::new([s1, hi], [lab_b])); // independent confirmation
    rel.insert(Tuple::new([s2, lo], [lab_b]));

    println!("source: {} annotated measurement tuples\n", rel.len());

    // --- Bag semantics: how many independent derivations per row?
    let bags: KRelation<Natural> = KRelation::from_annotated(&rel, 2, &|_| Natural::one());
    let merged = bags.project(&[0, 1]);
    println!("bag semantics (derivation counts):");
    print_rel(&rel, &merged);

    // --- Set semantics via a homomorphism from counts.
    let sets = merged.map_annotations(&|n: &Natural| Bool2(n.0 > 0));
    println!("set semantics (exists):");
    print_rel(&rel, &sets);

    // --- Cost semantics: lab A charges 3, lab B charges 5; joining data
    // adds costs, alternatives take the cheapest.
    let lab_a_var = lab_a.as_var();
    let costs: KRelation<Tropical> = KRelation::from_annotated(&rel, 2, &|v| {
        if v == lab_a_var {
            Tropical::finite(3)
        } else {
            Tropical::finite(5)
        }
    });
    let cheapest = costs.project(&[0, 1]);
    println!("tropical semantics (cheapest acquisition cost):");
    print_rel(&rel, &cheapest);

    // --- Access control: lab B's data is Confidential.
    let clearance: KRelation<Security> = KRelation::from_annotated(&rel, 2, &|v| {
        if v == lab_a_var {
            Security::Public
        } else {
            Security::Confidential
        }
    });
    let visible = clearance.project(&[0, 1]);
    println!("security semantics (required clearance; alternatives relax):");
    print_rel(&rel, &visible);

    // --- The universal view: N[X] polynomials record everything.
    let poly: KRelation<Polynomial> = KRelation::from_annotated(&rel, 2, &|v| Polynomial::var(v));
    let universal = poly.project(&[0, 1]);
    println!("provenance polynomials (the universal semiring):");
    for (row, k) in universal.iter() {
        println!("    {:<22} {}", render_row(&rel, row), k);
    }

    // Evaluating the polynomial under a valuation must agree with running
    // the query directly in the target semiring (the factorisation
    // property of N[X]).
    let recount = universal.map_annotations(&|p: &Polynomial| p.eval(&|_| Natural::one()));
    assert_eq!(recount, merged, "eval ∘ query == query ∘ eval");
    println!("\nfactorisation check: N[X] query evaluated into ℕ matches the bag query ✓");

    // --- Generalization as a homomorphism: collapse both labs into one
    // concept and observe that it commutes with the query.
    let site = Item::label(0).as_var();
    let generalize = move |p: &Polynomial| p.map_vars(&|_| site);
    let lhs = universal.map_annotations(&generalize); // query → generalize
    let poly_gen = poly.map_annotations(&generalize); // generalize → query
    let rhs = poly_gen.project(&[0, 1]);
    assert_eq!(lhs, rhs, "generalization commutes with the query");
    println!("generalization-as-homomorphism check: commutes with projection ✓");
}

fn render_row(rel: &AnnotatedRelation, row: &[Item]) -> String {
    row.iter()
        .map(|&i| rel.vocab().name(i))
        .collect::<Vec<_>>()
        .join(", ")
}

fn print_rel<K: Semiring + std::fmt::Display>(rel: &AnnotatedRelation, k: &KRelation<K>) {
    for (row, ann) in k.iter() {
        println!("    {:<22} {}", render_row(rel, row), ann);
    }
    println!();
}
