//! A non-interactive re-implementation of the paper's application menu
//! (Figs. 5, 6, 14, 15): every menu option is a subcommand operating on the
//! paper's text file formats.
//!
//! ```text
//! curation_cli mine-d2a   <dataset> <min_sup> <min_conf> [out.rules]
//! curation_cli mine-a2a   <dataset> <min_sup> <min_conf> [out.rules]
//! curation_cli mine-all   <dataset> <min_sup> <min_conf> [out.rules]
//! curation_cli add-tuples <dataset> <tuples_file> <out_dataset>
//! curation_cli annotate   <dataset> <batch_file> <out_dataset>   # Fig. 14 lines "150: Annot_3"
//! curation_cli recommend  <dataset> <min_sup> <min_conf>
//! curation_cli generalize <dataset> <rules_file> <min_sup> <min_conf>  # Fig. 9 rules
//! ```
//!
//! Try it on generated data:
//!
//! ```text
//! cargo run --example curation_cli -- demo /tmp/anno_demo
//! cargo run --example curation_cli -- mine-all /tmp/anno_demo/dataset.txt 0.3 0.8
//! ```

use std::fs;
use std::process::ExitCode;

use annomine::mine::{
    mine_annotation_to_annotation, mine_data_to_annotation, mine_rules, recommend_missing,
    rules_to_string, RuleSet, Thresholds,
};
use annomine::mine::{IncrementalConfig, IncrementalMiner};
use annomine::store::{
    dataset_to_string, format_annotation_batch, generate, parse_annotation_batch, parse_dataset,
    snapshot_from_string, snapshot_to_string, taxonomy_from_rules, AnnotatedRelation,
    GeneratorConfig,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("run with no arguments for usage");
            ExitCode::FAILURE
        }
    }
}

fn load(path: &str) -> Result<AnnotatedRelation, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse_dataset(path, &text).map_err(|e| format!("{path}: {e}"))
}

fn thresholds(sup: &str, conf: &str) -> Result<Thresholds, String> {
    let s: f64 = sup.parse().map_err(|_| format!("bad support {sup:?}"))?;
    let c: f64 = conf
        .parse()
        .map_err(|_| format!("bad confidence {conf:?}"))?;
    Ok(Thresholds::new(s, c))
}

fn emit(rules: &RuleSet, rel: &AnnotatedRelation, out: Option<&String>) -> Result<(), String> {
    let text = rules_to_string(rules, rel.vocab());
    match out {
        Some(path) => {
            fs::write(path, &text).map_err(|e| format!("{path}: {e}"))?;
            println!("{} rules written to {path}", rules.len());
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn run(args: &[String]) -> Result<(), String> {
    let usage = "\
subcommands (the paper's menu options):
  demo        <out_dir>                                  generate a sample dataset + batch files
  mine-d2a    <dataset> <min_sup> <min_conf> [out]       option 1: data-to-annotation rules
  mine-a2a    <dataset> <min_sup> <min_conf> [out]       option 2: annotation-to-annotation rules
  mine-all    <dataset> <min_sup> <min_conf> [out]       options 1+2 in one pass
  add-tuples  <dataset> <tuples_file> <out_dataset>      options 5/6: append tuples
  annotate    <dataset> <batch_file> <out_dataset>       option 4: apply 'tuple: Annot' lines
  recommend   <dataset> <min_sup> <min_conf>             section 5: missing-annotation suggestions
  generalize  <dataset> <rules_file> <min_sup> <min_conf> section 4.1: mine with generalization
  checkpoint  <dataset> <min_sup> <min_conf> <out_prefix> persist DB snapshot + miner state
  resume      <prefix> <batch_file>                       restore, apply Fig. 14 batch, persist";

    match args {
        [] => {
            println!("{usage}");
            Ok(())
        }
        [cmd, rest @ ..] => match (cmd.as_str(), rest) {
            ("demo", [dir]) => {
                fs::create_dir_all(dir).map_err(|e| format!("{dir}: {e}"))?;
                let ds = generate(&GeneratorConfig::default());
                let dataset_path = format!("{dir}/dataset.txt");
                fs::write(&dataset_path, dataset_to_string(&ds.relation))
                    .map_err(|e| e.to_string())?;
                // A Fig. 14-style annotation batch against the dataset.
                let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5);
                let batch = annomine::store::random_annotation_batch(&ds.relation, &mut rng, 40);
                fs::write(
                    format!("{dir}/batch.txt"),
                    format_annotation_batch(ds.relation.vocab(), &batch),
                )
                .map_err(|e| e.to_string())?;
                println!(
                    "wrote {dataset_path} ({} tuples) and {dir}/batch.txt ({} updates)",
                    ds.relation.len(),
                    batch.len()
                );
                Ok(())
            }
            ("mine-d2a", [dataset, sup, conf, out @ ..]) => {
                let rel = load(dataset)?;
                let rules = mine_data_to_annotation(&rel, &thresholds(sup, conf)?);
                emit(&rules, &rel, out.first())
            }
            ("mine-a2a", [dataset, sup, conf, out @ ..]) => {
                let rel = load(dataset)?;
                let rules = mine_annotation_to_annotation(&rel, &thresholds(sup, conf)?);
                emit(&rules, &rel, out.first())
            }
            ("mine-all", [dataset, sup, conf, out @ ..]) => {
                let rel = load(dataset)?;
                let rules = mine_rules(&rel, &thresholds(sup, conf)?);
                emit(&rules, &rel, out.first())
            }
            ("add-tuples", [dataset, tuples_file, out_dataset]) => {
                let mut rel = load(dataset)?;
                let text =
                    fs::read_to_string(tuples_file).map_err(|e| format!("{tuples_file}: {e}"))?;
                let mut added = 0usize;
                for line in text.lines() {
                    if let Some(tuple) = annomine::store::parse_tuple_line(rel.vocab_mut(), line) {
                        rel.insert(tuple);
                        added += 1;
                    }
                }
                fs::write(out_dataset, dataset_to_string(&rel)).map_err(|e| e.to_string())?;
                println!("appended {added} tuples; new dataset at {out_dataset}");
                Ok(())
            }
            ("annotate", [dataset, batch_file, out_dataset]) => {
                let mut rel = load(dataset)?;
                let text =
                    fs::read_to_string(batch_file).map_err(|e| format!("{batch_file}: {e}"))?;
                let updates =
                    parse_annotation_batch(rel.vocab_mut(), &text).map_err(|e| e.to_string())?;
                let requested = updates.len();
                let delta = rel.apply_annotation_batch(updates);
                fs::write(out_dataset, dataset_to_string(&rel)).map_err(|e| e.to_string())?;
                println!(
                    "applied {} of {requested} annotation updates (rest were duplicates or dead targets); new dataset at {out_dataset}",
                    delta.len(),
                );
                Ok(())
            }
            ("recommend", [dataset, sup, conf]) => {
                let rel = load(dataset)?;
                let rules = mine_rules(&rel, &thresholds(sup, conf)?);
                let recs = recommend_missing(&rel, &rules);
                println!("{} recommendations:", recs.len());
                for rec in recs.iter().take(25) {
                    println!("  {}", rec.render(rel.vocab()));
                }
                if recs.len() > 25 {
                    println!("  … and {} more", recs.len() - 25);
                }
                Ok(())
            }
            ("generalize", [dataset, rules_file, sup, conf]) => {
                let mut rel = load(dataset)?;
                let text =
                    fs::read_to_string(rules_file).map_err(|e| format!("{rules_file}: {e}"))?;
                let tax = taxonomy_from_rules(&text, rel.vocab_mut())?;
                let (extended, rules) =
                    annomine::mine::mine_generalized(&rel, &tax, &thresholds(sup, conf)?);
                print!("{}", rules_to_string(&rules, extended.vocab()));
                Ok(())
            }
            ("checkpoint", [dataset, sup, conf, prefix]) => {
                let rel = load(dataset)?;
                let miner = IncrementalMiner::mine_initial(
                    &rel,
                    IncrementalConfig {
                        thresholds: thresholds(sup, conf)?,
                        ..Default::default()
                    },
                );
                fs::write(format!("{prefix}.snap"), snapshot_to_string(&rel))
                    .map_err(|e| e.to_string())?;
                fs::write(format!("{prefix}.ckpt"), miner.checkpoint_to_string())
                    .map_err(|e| e.to_string())?;
                println!(
                    "mined {} rules; state persisted to {prefix}.snap + {prefix}.ckpt",
                    miner.rules().len()
                );
                Ok(())
            }
            ("resume", [prefix, batch_file]) => {
                let snap = fs::read_to_string(format!("{prefix}.snap"))
                    .map_err(|e| format!("{prefix}.snap: {e}"))?;
                let mut rel = snapshot_from_string(&snap)?;
                let ckpt = fs::read_to_string(format!("{prefix}.ckpt"))
                    .map_err(|e| format!("{prefix}.ckpt: {e}"))?;
                let mut miner = IncrementalMiner::checkpoint_from_string(&ckpt)?;
                let before = miner.rules().len();
                let text =
                    fs::read_to_string(batch_file).map_err(|e| format!("{batch_file}: {e}"))?;
                let updates =
                    parse_annotation_batch(rel.vocab_mut(), &text).map_err(|e| e.to_string())?;
                let delta = miner.apply_annotations(&mut rel, updates);
                fs::write(format!("{prefix}.snap"), snapshot_to_string(&rel))
                    .map_err(|e| e.to_string())?;
                fs::write(format!("{prefix}.ckpt"), miner.checkpoint_to_string())
                    .map_err(|e| e.to_string())?;
                println!(
                    "applied {} updates incrementally: {} rules -> {} rules (verified: {}); state re-persisted",
                    delta.len(),
                    before,
                    miner.rules().len(),
                    miner.verify_against_remine(&rel)
                );
                Ok(())
            }
            _ => Err(format!("unknown or malformed command {cmd:?}\n{usage}")),
        },
    }
}
