//! A realistic curation scenario (the paper's §1 motivation): a gene table
//! whose curators attach free-text annotations in inconsistent formats.
//!
//! Walks the full pipeline:
//! 1. keyword-based generalization rules collapse free-text annotations
//!    onto concepts (Fig. 8: "Invalid"/"wrong"/"incorrect" ⇒ Invalidation);
//! 2. generalized mining surfaces correlations invisible at the raw level
//!    (§4.1);
//! 3. a fraction of annotations is hidden and the recommendation engine
//!    (§5) is scored on recovering them;
//! 4. a curation session replays the insert trigger (Fig. 17).
//!
//! ```text
//! cargo run --example gene_annotation_curation
//! ```

use annomine::mine::{
    mine_generalized, mine_rules, recommend_missing, score_recommendations, CurationSession,
    IncrementalConfig, Thresholds,
};
use annomine::store::{hide_annotations, keyword_rule, AnnotatedRelation, Taxonomy, Tuple};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Build the gene table: pathway-P53 genes get flagged by three curators
/// in three different phrasings; housekeeping genes rarely get flagged.
fn build_gene_table() -> AnnotatedRelation {
    let mut rel = AnnotatedRelation::new("genes");
    let flags = [
        "Invalid expression profile",
        "value looks wrong",
        "incorrect strand reported",
    ];
    let reviews = ["reviewed by curator A", "reviewed by curator B"];
    for i in 0..120 {
        let pathway = if i % 3 == 0 {
            "pathway:p53"
        } else {
            "pathway:other"
        };
        let assay = if i % 2 == 0 {
            "assay:rnaseq"
        } else {
            "assay:microarray"
        };
        let p = rel.vocab_mut().data(pathway);
        let a = rel.vocab_mut().data(assay);
        let mut anns = Vec::new();
        // p53-pathway RNA-seq rows get invalidation flags (each curator
        // phrases the flag differently) and usually a review stamp. The
        // flag index must vary independently of the row periodicity.
        if pathway == "pathway:p53" && assay == "assay:rnaseq" {
            let k = i / 6; // dense index over the flagged rows
            let flag = rel.vocab_mut().annotation(flags[k % flags.len()]);
            anns.push(flag);
            if k % 5 != 0 {
                let review = rel.vocab_mut().annotation(reviews[k % reviews.len()]);
                anns.push(review);
            }
        }
        rel.insert(Tuple::new([p, a], anns));
    }
    rel
}

fn main() {
    let mut rel = build_gene_table();
    let thresholds = Thresholds::new(0.1, 0.85);

    // --- Step 1: raw mining misses the correlation (three phrasings split
    // the support/confidence three ways).
    let raw = mine_rules(&rel, &thresholds);
    println!(
        "raw mining: {} rules (free-text flags are too fragmented)",
        raw.len()
    );

    // --- Step 2: keyword generalization (Fig. 8) + multi-level concepts.
    let mut tax = Taxonomy::new();
    let invalidation = keyword_rule(
        rel.vocab_mut(),
        &["invalid", "wrong", "incorrect"],
        "Invalidation",
    );
    let reviewed = keyword_rule(rel.vocab_mut(), &["reviewed by"], "Reviewed");
    tax.add_rule(&invalidation);
    tax.add_rule(&reviewed);
    println!(
        "taxonomy: {} raw annotations generalize into 2 concepts",
        tax.edge_count()
    );

    let (extended, gen_rules) = mine_generalized(&rel, &tax, &thresholds);
    println!("generalized mining: {} rules, e.g.:", gen_rules.len());
    for line in gen_rules.render(extended.vocab()).lines().take(4) {
        println!("    {line}");
    }

    // --- Step 3: hide 25% of annotation occurrences and try to recover
    // them with rule-based recommendations (§5 + E7 scoring). Because the
    // curators' phrasings are interchangeable, recovery is scored at the
    // *concept* level: a hidden "value looks wrong" counts as recovered if
    // the system recommends the Invalidation concept for that tuple.
    let mut rng = StdRng::seed_from_u64(1234);
    let (damaged, hidden) = hide_annotations(&rel, &mut rng, 0.25);
    let damaged_ext = tax.extend_relation(&damaged);
    let recovery_thresholds = Thresholds::new(0.05, 0.6);
    let rules = mine_rules(&damaged_ext, &recovery_thresholds);
    let recs = recommend_missing(&damaged_ext, &rules);
    // Lift the hidden raw annotations to their concepts, keeping only the
    // ones whose concept really disappeared from the damaged tuple.
    let hidden_concepts: Vec<annomine::store::AnnotationUpdate> = hidden
        .iter()
        .flat_map(|u| {
            tax.ancestors(u.annotation).into_iter().map(move |label| {
                annomine::store::AnnotationUpdate {
                    tuple: u.tuple,
                    annotation: label,
                }
            })
        })
        .filter(|u| {
            !damaged_ext
                .tuple(u.tuple)
                .is_some_and(|t| t.contains(u.annotation))
        })
        .collect();
    let concept_recs: Vec<_> = recs
        .iter()
        .filter(|r| r.annotation.kind() == annomine::store::ItemKind::Label)
        .cloned()
        .collect();
    let quality = score_recommendations(&concept_recs, &hidden_concepts);
    println!(
        "\nconcept-level recovery of hidden annotations: precision {:.2}, recall {:.2}, F1 {:.2} \
         ({} concept gaps, {} predicted)",
        quality.precision(),
        quality.recall(),
        quality.f1(),
        hidden_concepts.len(),
        concept_recs.len()
    );

    // --- Step 4: the insert trigger (Fig. 17). New p53/rnaseq genes arrive
    // un-flagged; the trigger predicts the concept annotations they are
    // probably missing, and the curator accepts the first suggestion.
    let mut session = CurationSession::open(
        extended,
        IncrementalConfig {
            thresholds,
            ..Default::default()
        },
    );
    let p = session
        .relation()
        .vocab()
        .get(annomine::store::ItemKind::Data, "pathway:p53");
    let a = session
        .relation()
        .vocab()
        .get(annomine::store::ItemKind::Data, "assay:rnaseq");
    let (p, a) = (p.unwrap(), a.unwrap());
    session.insert_tuples(vec![Tuple::new([p, a], []), Tuple::new([p, a], [])]);
    println!(
        "\ninsert trigger queued {} predictions for 2 new genes:",
        session.pending().len()
    );
    for rec in session.pending().iter().take(4) {
        println!("    {}", rec.render(session.relation().vocab()));
    }
    let accepted = session.accept(0);
    println!(
        "curator accepted the top suggestion (applied through Case-3 maintenance): {accepted}"
    );
    assert!(session.miner().verify_against_remine(session.relation()));
    println!("rule state verified identical to a from-scratch mine. Done.");
}
